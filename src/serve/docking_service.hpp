#pragma once

/// \file docking_service.hpp
/// Docking-as-a-service: a worker pool executing dock (greedy/epsilon
/// policy rollout) and screen (vs_pipeline) jobs against the current
/// registry model. Admission goes through the bounded JobQueue
/// (backpressure + priorities); per-step Q evaluation goes through the
/// shared InferenceBatcher, so concurrent rollouts coalesce their
/// forward passes into GEMM-friendly batches. Workers poll job
/// cancellation flags and per-job deadlines between environment steps,
/// so a stuck or abandoned request never pins a worker.

#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "src/common/stopwatch.hpp"
#include "src/core/state_encoder.hpp"
#include "src/metadock/docking_env.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/serve/inference_batcher.hpp"
#include "src/serve/job_queue.hpp"
#include "src/serve/model_registry.hpp"

namespace dqndock::serve {

struct ServiceOptions {
  std::size_t workers = 2;
  std::size_t queueCapacity = 64;
  /// State encoding the published networks were trained with; the
  /// registry's input dim must match the resulting encoder dim.
  core::StateMode stateMode = core::StateMode::kLigandPositions;
  bool normalizeStates = true;
  metadock::EnvConfig env;     ///< per-worker environment config
  BatcherOptions batcher;
  /// Static-prefix fold override; unset defers to the
  /// DQNDOCK_FOLD_STATIC environment gate (default on). Inert when the
  /// state mode has no constant prefix or the registry's architecture
  /// rejects folding.
  std::optional<bool> foldStatic{};
};

/// Roll the registry policy out from the scenario's initial pose.
struct DockRequest {
  int maxSteps = 200;
  /// Exploration noise; 0 = pure greedy (deterministic given the model).
  double epsilon = 0.0;
  std::uint64_t seed = 1;
  JobPriority priority = JobPriority::kNormal;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked between steps.
  double timeoutSeconds = 0.0;
};

struct DockResult {
  double initialScore = 0.0;
  double bestScore = 0.0;
  double finalScore = 0.0;
  double bestRmsd = 0.0;  ///< lowest RMSD-to-crystal seen
  std::size_t steps = 0;
  std::string termination;  ///< env termination reason (or "step_budget")
  std::uint64_t modelVersion = 0;
  double seconds = 0.0;
};

/// Metaheuristic screen of a generated ligand library (the classical
/// METADOCK workload, served). Cancellation/timeout apply while queued;
/// a running screen completes its library.
struct ScreenRequest {
  std::size_t librarySize = 4;
  std::size_t minAtoms = 8;
  std::size_t maxAtoms = 14;
  std::size_t evaluationsPerLigand = 400;
  std::uint64_t seed = 2020;
  JobPriority priority = JobPriority::kNormal;
  double timeoutSeconds = 0.0;
};

struct ScreenResult {
  std::size_t ligands = 0;
  std::size_t hitCount = 0;
  double bestScore = 0.0;
  std::string bestLigand;
  std::size_t totalEvaluations = 0;
  double seconds = 0.0;
};

/// Terminal report for one job. For dock jobs interrupted by
/// cancel/timeout, `dock` holds the partial rollout up to the
/// interruption point.
struct JobOutcome {
  enum class Kind : unsigned char { kDock = 0, kScreen };
  std::uint64_t jobId = 0;
  Kind kind = Kind::kDock;
  JobStatus status = JobStatus::kQueued;
  std::string error;
  DockResult dock;
  ScreenResult screen;
};

struct ServiceStats {
  JobQueueStats queue;
  BatcherStats batcher;
  std::size_t workers = 0;
  std::size_t queueDepth = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timedOut = 0;
};

class DockingService {
 public:
  /// The registry's network architecture must match the encoder dim and
  /// the env action count (throws std::invalid_argument otherwise).
  DockingService(const chem::Scenario& scenario, ModelRegistry& registry,
                 ServiceOptions options = {}, ThreadPool* pool = nullptr);
  ~DockingService();

  DockingService(const DockingService&) = delete;
  DockingService& operator=(const DockingService&) = delete;

  SubmitResult submitDock(const DockRequest& request);
  SubmitResult submitScreen(const ScreenRequest& request);

  /// Block until the job is terminal and collect its outcome (the ticket
  /// is released — a second wait on the same id throws
  /// std::out_of_range). Rejected submissions have no ticket; check
  /// SubmitResult::accepted() first.
  JobOutcome wait(std::uint64_t jobId);

  /// Cancel a queued or running job; returns false for unknown ids
  /// (e.g. already collected).
  bool cancel(std::uint64_t jobId);

  /// Graceful: stop admission, let workers drain queued jobs, join.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const core::StateEncoder& encoder() const { return encoder_; }
  const ServiceOptions& options() const { return options_; }
  /// True when the registry's networks run the folded input-layer path
  /// and dock rollouts materialise only the dynamic state suffix.
  bool foldActive() const { return foldActive_; }

 private:
  struct Ticket {
    std::shared_ptr<Job> job;
    std::shared_ptr<JobOutcome> outcome;  ///< written by the worker before finish()
  };

  void workerLoop(std::size_t workerIndex);
  void runDock(Job& job, const DockRequest& request, JobOutcome& outcome,
               metadock::DockingEnv& env);
  void runScreen(Job& job, const ScreenRequest& request, JobOutcome& outcome);
  static void finishPartial(Job& job, DockResult& r, const Stopwatch& clock, int steps,
                            metadock::DockingEnv& env, JobStatus status, std::string error);
  SubmitResult submit(std::shared_ptr<Job> job, std::shared_ptr<JobOutcome> outcome);
  void recordTerminal(JobStatus status);

  chem::Scenario scenario_;
  ModelRegistry& registry_;
  ServiceOptions options_;
  ThreadPool* pool_;
  core::StateEncoder encoder_;
  /// Decided after encoder_, before batcher_ (the batcher's row width
  /// depends on it) — member order is load-bearing.
  bool foldActive_;
  InferenceBatcher batcher_;
  JobQueue queue_;
  std::vector<std::unique_ptr<metadock::DockingEnv>> envs_;

  mutable std::mutex ticketsMu_;
  std::unordered_map<std::uint64_t, Ticket> tickets_;
  std::uint64_t nextJobId_ = 1;
  std::uint64_t done_ = 0, failed_ = 0, cancelled_ = 0, timedOut_ = 0;

  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace dqndock::serve
