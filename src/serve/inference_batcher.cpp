#include "src/serve/inference_batcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace dqndock::serve {

InferenceBatcher::InferenceBatcher(ForwardFn forward, std::size_t inputDim, int actionCount,
                                   BatcherOptions options)
    : forward_(std::move(forward)),
      inputDim_(inputDim),
      actionCount_(actionCount),
      options_(options) {
  if (!forward_) throw std::invalid_argument("InferenceBatcher: null forward fn");
  if (inputDim_ == 0 || actionCount_ <= 0) {
    throw std::invalid_argument("InferenceBatcher: bad dimensions");
  }
  if (options_.maxBatch == 0) options_.maxBatch = 1;
  dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceBatcher::~InferenceBatcher() { shutdown(); }

std::vector<double> InferenceBatcher::infer(std::span<const double> state) {
  if (state.size() != inputDim_) {
    throw std::invalid_argument("InferenceBatcher::infer: state dim mismatch");
  }
  Request req;
  req.state.assign(state.begin(), state.end());
  {
    std::unique_lock lock(mu_);
    if (stop_) throw std::runtime_error("InferenceBatcher::infer: batcher is shut down");
    req.enqueuedAt = std::chrono::steady_clock::now();
    pending_.push_back(&req);
    pendingCv_.notify_one();
    req.cv.wait(lock, [&] { return req.done; });
  }
  if (req.error) std::rethrow_exception(req.error);
  return std::move(req.result);
}

void InferenceBatcher::shutdown() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    pendingCv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

BatcherStats InferenceBatcher::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void InferenceBatcher::dispatchLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    pendingCv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;  // drained
      continue;
    }
    // A batch opens with the first waiting request; give stragglers until
    // the flush deadline to coalesce, unless the batch fills first or we
    // are draining for shutdown. The deadline is anchored to the OLDEST
    // pending row's enqueue time: if the dispatcher spent that long (or
    // longer) in the previous forward pass, the batch flushes immediately
    // instead of charging the queued rows a second full wait. The
    // absolute deadline also makes spurious condvar wakeups and late
    // arrivals harmless — neither can push it back.
    if (options_.flushDeadline.count() > 0) {
      const auto deadline = pending_.front()->enqueuedAt + options_.flushDeadline;
      pendingCv_.wait_until(lock, deadline,
                            [&] { return stop_ || pending_.size() >= options_.maxBatch; });
    }
    const std::size_t take = std::min(pending_.size(), options_.maxBatch);
    std::vector<Request*> batch(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);

    stats_.batches += 1;
    stats_.requests += take;
    stats_.maxBatchRows = std::max(stats_.maxBatchRows, take);
    if (take == options_.maxBatch) {
      stats_.fullBatches += 1;
    } else {
      stats_.deadlineFlushes += 1;
    }

    lock.unlock();
    runBatch(batch);
    lock.lock();
    for (Request* req : batch) {
      req->done = true;
      req->cv.notify_one();
    }
  }
}

void InferenceBatcher::runBatch(std::vector<Request*>& batch) {
  nn::Tensor states(batch.size(), inputDim_);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    std::copy(batch[r]->state.begin(), batch[r]->state.end(), states.row(r).begin());
  }
  nn::Tensor q;
  try {
    forward_(states, q);
    if (q.rows() != batch.size() || q.cols() != static_cast<std::size_t>(actionCount_)) {
      throw std::runtime_error("InferenceBatcher: forward fn returned wrong shape");
    }
    for (std::size_t r = 0; r < batch.size(); ++r) {
      const auto row = q.row(r);
      batch[r]->result.assign(row.begin(), row.end());
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Request* req : batch) req->error = err;
  }
}

}  // namespace dqndock::serve
