#include "src/core/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace dqndock::core {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

bool parseBool(const std::string& v, std::size_t line) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::runtime_error("config line " + std::to_string(line) + ": bad boolean '" + v + "'");
}

std::vector<std::size_t> parseSizeList(const std::string& v, std::size_t line) {
  std::vector<std::size_t> out;
  std::istringstream ss(v);
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      out.push_back(static_cast<std::size_t>(std::stoul(trim(token))));
    } catch (const std::exception&) {
      throw std::runtime_error("config line " + std::to_string(line) + ": bad list entry '" +
                               token + "'");
    }
  }
  if (out.empty()) {
    throw std::runtime_error("config line " + std::to_string(line) + ": empty list");
  }
  return out;
}

/// Key dispatch table: section.key -> setter.
using Setter = std::function<void(DqnDockingConfig&, const std::string&, std::size_t)>;

double parseDouble(const std::string& v, std::size_t line) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::runtime_error("config line " + std::to_string(line) + ": bad number '" + v + "'");
  }
}

long parseLong(const std::string& v, std::size_t line) {
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    throw std::runtime_error("config line " + std::to_string(line) + ": bad integer '" + v + "'");
  }
}

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> table = {
      // [scenario]
      {"scenario.receptor_atoms",
       [](auto& c, const auto& v, auto l) { c.scenario.receptorAtoms = parseLong(v, l); }},
      {"scenario.ligand_atoms",
       [](auto& c, const auto& v, auto l) { c.scenario.ligandAtoms = parseLong(v, l); }},
      {"scenario.rotatable_bonds",
       [](auto& c, const auto& v, auto l) { c.scenario.ligandRotatableBonds = parseLong(v, l); }},
      {"scenario.receptor_bond_features",
       [](auto& c, const auto& v, auto l) { c.scenario.receptorBondFeatures = parseLong(v, l); }},
      {"scenario.seed",
       [](auto& c, const auto& v, auto l) { c.scenario.seed = parseLong(v, l); }},
      // [env]
      {"env.shift_step",
       [](auto& c, const auto& v, auto l) { c.env.shiftStep = parseDouble(v, l); }},
      {"env.rotate_step_deg",
       [](auto& c, const auto& v, auto l) { c.env.rotateStepDeg = parseDouble(v, l); }},
      {"env.torsion_step_deg",
       [](auto& c, const auto& v, auto l) { c.env.torsionStepDeg = parseDouble(v, l); }},
      {"env.flexible",
       [](auto& c, const auto& v, auto l) { c.env.flexibleLigand = parseBool(v, l); }},
      {"env.max_steps",
       [](auto& c, const auto& v, auto l) { c.env.maxSteps = static_cast<int>(parseLong(v, l)); }},
      {"env.score_floor",
       [](auto& c, const auto& v, auto l) { c.env.scoreFloor = parseDouble(v, l); }},
      {"env.floor_patience",
       [](auto& c, const auto& v, auto l) { c.env.floorPatience = static_cast<int>(parseLong(v, l)); }},
      {"env.boundary_factor",
       [](auto& c, const auto& v, auto l) { c.env.boundaryFactor = parseDouble(v, l); }},
      {"env.cutoff",
       [](auto& c, const auto& v, auto l) { c.env.scoring.cutoff = parseDouble(v, l); }},
      {"env.reward_mode",
       [](auto& c, const auto& v, auto l) {
         if (v == "sign-clip") {
           c.env.rewardMode = metadock::RewardMode::kSignClip;
         } else if (v == "raw-delta") {
           c.env.rewardMode = metadock::RewardMode::kRawDelta;
         } else if (v == "clipped-delta") {
           c.env.rewardMode = metadock::RewardMode::kClippedDelta;
         } else if (v == "absolute") {
           c.env.rewardMode = metadock::RewardMode::kAbsolute;
         } else {
           throw std::runtime_error("config line " + std::to_string(l) +
                                    ": unknown reward mode '" + v + "'");
         }
       }},
      // [state]
      {"state.mode", [](auto& c, const auto& v, auto) { c.stateMode = stateModeFromName(v); }},
      {"state.normalize",
       [](auto& c, const auto& v, auto l) { c.normalizeStates = parseBool(v, l); }},
      {"state.fold_static",
       [](auto& c, const auto& v, auto l) {
         if (v == "auto") {
           c.foldStatic.reset();
         } else {
           c.foldStatic = parseBool(v, l);
         }
       }},
      // [agent]
      {"agent.gamma", [](auto& c, const auto& v, auto l) { c.agent.gamma = parseDouble(v, l); }},
      {"agent.learning_rate",
       [](auto& c, const auto& v, auto l) { c.agent.learningRate = parseDouble(v, l); }},
      {"agent.optimizer", [](auto& c, const auto& v, auto) { c.agent.optimizer = v; }},
      {"agent.batch_size",
       [](auto& c, const auto& v, auto l) { c.agent.batchSize = parseLong(v, l); }},
      {"agent.target_sync",
       [](auto& c, const auto& v, auto l) { c.agent.targetSyncInterval = parseLong(v, l); }},
      {"agent.hidden",
       [](auto& c, const auto& v, auto l) { c.agent.hiddenSizes = parseSizeList(v, l); }},
      {"agent.double_dqn",
       [](auto& c, const auto& v, auto l) {
         c.agent.variant = parseBool(v, l) ? rl::DqnVariant::kDouble : rl::DqnVariant::kVanilla;
       }},
      {"agent.dueling",
       [](auto& c, const auto& v, auto l) { c.agent.dueling = parseBool(v, l); }},
      {"agent.clip_td_error",
       [](auto& c, const auto& v, auto l) { c.agent.clipTdError = parseBool(v, l); }},
      // [trainer]
      {"trainer.episodes",
       [](auto& c, const auto& v, auto l) { c.trainer.episodes = parseLong(v, l); }},
      {"trainer.learning_start",
       [](auto& c, const auto& v, auto l) { c.trainer.learningStart = parseLong(v, l); }},
      {"trainer.seed", [](auto& c, const auto& v, auto l) { c.trainer.seed = parseLong(v, l); }},
      {"trainer.vector_envs",
       [](auto& c, const auto& v, auto l) { c.vectorEnvs = parseLong(v, l); }},
      {"trainer.epsilon_start",
       [](auto& c, const auto& v, auto l) {
         c.trainer.epsilon = rl::EpsilonSchedule(parseDouble(v, l), c.trainer.epsilon.end(),
                                                 4.5e-5, c.trainer.epsilon.pureExplorationSteps());
       }},
      // [replay]
      {"replay.capacity",
       [](auto& c, const auto& v, auto l) { c.replayCapacity = parseLong(v, l); }},
      {"replay.compact",
       [](auto& c, const auto& v, auto l) { c.compactReplay = parseBool(v, l); }},
      {"replay.prioritized",
       [](auto& c, const auto& v, auto l) { c.prioritizedReplay = parseBool(v, l); }},
      {"replay.n_step",
       [](auto& c, const auto& v, auto l) { c.nStep = static_cast<int>(parseLong(v, l)); }},
  };
  return table;
}

}  // namespace

void writeConfig(std::ostream& out, const DqnDockingConfig& cfg) {
  out << "# dqn-docking run configuration\n";
  out << "[scenario]\n";
  out << "receptor_atoms = " << cfg.scenario.receptorAtoms << '\n';
  out << "ligand_atoms = " << cfg.scenario.ligandAtoms << '\n';
  out << "rotatable_bonds = " << cfg.scenario.ligandRotatableBonds << '\n';
  out << "receptor_bond_features = " << cfg.scenario.receptorBondFeatures << '\n';
  out << "seed = " << cfg.scenario.seed << '\n';
  out << "[env]\n";
  out << "shift_step = " << cfg.env.shiftStep << '\n';
  out << "rotate_step_deg = " << cfg.env.rotateStepDeg << '\n';
  out << "torsion_step_deg = " << cfg.env.torsionStepDeg << '\n';
  out << "flexible = " << (cfg.env.flexibleLigand ? "true" : "false") << '\n';
  out << "max_steps = " << cfg.env.maxSteps << '\n';
  out << "score_floor = " << cfg.env.scoreFloor << '\n';
  out << "floor_patience = " << cfg.env.floorPatience << '\n';
  out << "boundary_factor = " << cfg.env.boundaryFactor << '\n';
  out << "cutoff = " << cfg.env.scoring.cutoff << '\n';
  out << "reward_mode = " << metadock::rewardModeName(cfg.env.rewardMode) << '\n';
  out << "[state]\n";
  out << "mode = " << stateModeName(cfg.stateMode) << '\n';
  out << "normalize = " << (cfg.normalizeStates ? "true" : "false") << '\n';
  out << "fold_static = "
      << (cfg.foldStatic ? (*cfg.foldStatic ? "true" : "false") : "auto") << '\n';
  out << "[agent]\n";
  out << "gamma = " << cfg.agent.gamma << '\n';
  out << "learning_rate = " << cfg.agent.learningRate << '\n';
  out << "optimizer = " << cfg.agent.optimizer << '\n';
  out << "batch_size = " << cfg.agent.batchSize << '\n';
  out << "target_sync = " << cfg.agent.targetSyncInterval << '\n';
  out << "hidden = ";
  for (std::size_t i = 0; i < cfg.agent.hiddenSizes.size(); ++i) {
    if (i) out << ',';
    out << cfg.agent.hiddenSizes[i];
  }
  out << '\n';
  out << "double_dqn = " << (cfg.agent.variant == rl::DqnVariant::kDouble ? "true" : "false")
      << '\n';
  out << "dueling = " << (cfg.agent.dueling ? "true" : "false") << '\n';
  out << "clip_td_error = " << (cfg.agent.clipTdError ? "true" : "false") << '\n';
  out << "[trainer]\n";
  out << "episodes = " << cfg.trainer.episodes << '\n';
  out << "learning_start = " << cfg.trainer.learningStart << '\n';
  out << "seed = " << cfg.trainer.seed << '\n';
  out << "vector_envs = " << cfg.vectorEnvs << '\n';
  out << "[replay]\n";
  out << "capacity = " << cfg.replayCapacity << '\n';
  out << "compact = " << (cfg.compactReplay ? "true" : "false") << '\n';
  out << "prioritized = " << (cfg.prioritizedReplay ? "true" : "false") << '\n';
  out << "n_step = " << cfg.nStep << '\n';
}

void writeConfigFile(const std::string& path, const DqnDockingConfig& cfg) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeConfigFile: cannot open " + path);
  writeConfig(out, cfg);
}

DqnDockingConfig readConfig(std::istream& in, DqnDockingConfig base) {
  std::string line;
  std::string section;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw std::runtime_error("config line " + std::to_string(lineNo) + ": unterminated section");
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineNo) + ": expected key = value");
    }
    const std::string key = section + "." + trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end()) {
      throw std::runtime_error("config line " + std::to_string(lineNo) + ": unknown key '" + key +
                               "'");
    }
    it->second(base, value, lineNo);
  }
  return base;
}

DqnDockingConfig readConfigFile(const std::string& path, DqnDockingConfig base) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readConfigFile: cannot open " + path);
  return readConfig(in, std::move(base));
}

}  // namespace dqndock::core
