#pragma once

/// \file config.hpp
/// Bundled configuration for a full DQN-Docking run: the scenario, the
/// METADOCK environment, the state encoding, the agent, and the trainer.
/// `paper2bsm()` reproduces Table 1 of the paper verbatim; `scaled()` is
/// the CPU-budget preset benches default to (same algorithm, smaller
/// molecule/episode counts so a training run finishes in seconds rather
/// than GPU-days). Both resolve from the same code paths, so the flag
/// `--paper-scale` in the benches switches presets without touching code.

#include <optional>

#include "src/chem/synthetic.hpp"
#include "src/core/state_encoder.hpp"
#include "src/metadock/docking_env.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/trainer.hpp"

namespace dqndock::core {

struct DqnDockingConfig {
  chem::ScenarioSpec scenario;
  metadock::EnvConfig env;
  StateMode stateMode = StateMode::kLigandPositions;
  bool normalizeStates = true;
  rl::DqnConfig agent;
  rl::TrainerConfig trainer;
  /// Replay capacity (paper Table 1: N = 400,000).
  std::size_t replayCapacity = 400000;
  /// Use the compact pose-based replay instead of raw state storage.
  bool compactReplay = false;
  /// Proportional prioritized replay (Rainbow component, paper Section 5
  /// future work). Mutually exclusive with compactReplay.
  bool prioritizedReplay = false;
  /// n-step returns (>= 1); transitions carry n-step rewards and the
  /// agent bootstraps with gamma^n.
  int nStep = 1;
  /// Vectorized training: V lockstep envs batching action selection and
  /// pose scoring per step (trainer.hpp documents the schedule). 0 keeps
  /// the sequential trainer; 1 is the bit-identical vectorized run.
  /// Requires raw-state replay (compactReplay re-derives poses from the
  /// single sequential task at push time, so the paths are exclusive).
  std::size_t vectorEnvs = 0;
  /// Static-prefix input-layer fold override. Unset defers to the
  /// DQNDOCK_FOLD_STATIC environment gate (default on); an explicit
  /// value wins over the environment. Only takes effect when the state
  /// mode has a constant prefix (kFullPositions / kFullWithBonds) and
  /// the agent architecture supports folding (not dueling).
  std::optional<bool> foldStatic{};

  /// Table 1 verbatim: 2BSM-sized scenario, 16,599-real state, 12
  /// actions, hidden 135x135, eps 1 -> 0.05 at 4.5e-5/step, N = 400k,
  /// learning start 10k, pure exploration 20k, C = 1,000, RMSprop
  /// 2.5e-4, batch 32, gamma 0.99, M = 1,800 episodes of <= 1,000 steps.
  static DqnDockingConfig paper2bsm();

  /// Same pipeline at laptop scale: tiny scenario, ligand-only state,
  /// compact replay, tens of episodes. Intended for tests/benches.
  static DqnDockingConfig scaled();
};

}  // namespace dqndock::core
