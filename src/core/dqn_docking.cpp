#include "src/core/dqn_docking.hpp"

namespace dqndock::core {

DqnDocking::DqnDocking(DqnDockingConfig config, ThreadPool* pool)
    : config_(std::move(config)), scenario_(chem::buildScenario(config_.scenario)) {
  build(pool);
}

DqnDocking::DqnDocking(DqnDockingConfig config, chem::Scenario scenario, ThreadPool* pool)
    : config_(std::move(config)), scenario_(std::move(scenario)) {
  build(pool);
}

void DqnDocking::build(ThreadPool* pool) {
  if (config_.compactReplay && config_.prioritizedReplay) {
    throw std::invalid_argument(
        "DqnDocking: compactReplay and prioritizedReplay are mutually exclusive");
  }
  if (config_.nStep < 1) throw std::invalid_argument("DqnDocking: nStep must be >= 1");
  if (config_.nStep > 1 && config_.compactReplay) {
    throw std::invalid_argument(
        "DqnDocking: n-step returns require raw state storage (compactReplay records the "
        "trailing pose pair only)");
  }
  if (config_.vectorEnvs >= 1 && config_.compactReplay) {
    throw std::invalid_argument(
        "DqnDocking: vectorEnvs requires raw state storage (compactReplay re-derives poses "
        "from the single sequential task at push time)");
  }
  if (config_.vectorEnvs > 1 && config_.nStep > 1) {
    throw std::invalid_argument(
        "DqnDocking: n-step returns chain consecutive transitions of one episode stream; "
        "lockstep vectorEnvs > 1 interleave V streams into the sink");
  }
  config_.agent.nStep = config_.nStep;

  config_.env.scoring.pool = nullptr;  // parallelism lives in the NN + batch layers
  env_ = std::make_unique<metadock::DockingEnv>(scenario_, config_.env);
  encoder_ = std::make_unique<StateEncoder>(scenario_, config_.stateMode,
                                            config_.normalizeStates);
  task_ = std::make_unique<DockingTask>(*env_, *encoder_);

  Rng rng(config_.trainer.seed);
  agent_ = std::make_unique<rl::DqnAgent>(encoder_->dim(), env_->actionCount(), config_.agent,
                                          rng, pool);

  // Static-prefix fold: the config override wins over the
  // DQNDOCK_FOLD_STATIC environment gate. Inert when the state has no
  // constant prefix (ligand-only mode) or the architecture can't fold
  // (dueling) — enableStaticPrefixFold then returns false and the whole
  // pipeline keeps full-width states, byte-identical to the pre-fold
  // code path.
  const bool wantFold = config_.foldStatic.value_or(nn::foldStaticEnabled());
  const bool foldActive =
      wantFold && encoder_->staticPrefixLen() > 0 &&
      agent_->enableStaticPrefixFold(encoder_->staticPrefix());
  if (foldActive) task_->setDynamicStates(true);
  // Replay stores states at the width the env adapters emit them.
  const std::size_t replayDim = task_->stateDim();

  rl::ExperienceSink* sink = nullptr;
  rl::ExperienceSource* source = nullptr;
  if (config_.compactReplay) {
    poseReplay_ = std::make_unique<PoseReplayBuffer>(config_.replayCapacity, *task_);
    sink = poseReplay_.get();
    source = poseReplay_.get();
  } else if (config_.prioritizedReplay) {
    prioritizedReplay_ =
        std::make_unique<rl::PrioritizedReplayBuffer>(config_.replayCapacity, replayDim);
    sink = prioritizedReplay_.get();
    source = prioritizedReplay_.get();
  } else {
    rawReplay_ = std::make_unique<rl::ReplayBuffer>(config_.replayCapacity, replayDim);
    sink = rawReplay_.get();
    source = rawReplay_.get();
  }
  if (config_.nStep > 1) {
    nstepSink_ = std::make_unique<rl::NStepSink>(*sink, config_.nStep, config_.agent.gamma);
    sink = nstepSink_.get();
  }
  if (config_.vectorEnvs >= 1) {
    // The batched pose evaluator takes the pool; per-env scalar scoring
    // stays serial like the sequential path above.
    vectorEnv_ = std::make_unique<DockingVectorEnv>(scenario_, config_.env, *encoder_,
                                                    config_.vectorEnvs, pool);
    vectorEnv_->setDynamicStates(foldActive);
    trainer_ = std::make_unique<rl::Trainer>(*vectorEnv_, *agent_, *sink, *source,
                                             config_.trainer);
  } else {
    trainer_ = std::make_unique<rl::Trainer>(*task_, *agent_, *sink, *source, config_.trainer);
  }
}

const rl::MetricsLog& DqnDocking::train() { return trainer_->run(); }

rl::EpisodeRecord DqnDocking::trainEpisode() { return trainer_->runEpisode(); }

rl::EpisodeRecord DqnDocking::evaluateGreedy() { return trainer_->evaluateGreedy(); }

std::size_t DqnDocking::replayMemoryBytes() const {
  if (rawReplay_) return rawReplay_->memoryBytes();
  if (poseReplay_) return poseReplay_->memoryBytes();
  return 0;
}

}  // namespace dqndock::core
