#include "src/core/docking_vector_env.hpp"

#include <stdexcept>

namespace dqndock::core {

DockingVectorEnv::DockingVectorEnv(const chem::Scenario& scenario,
                                   const metadock::EnvConfig& config, const StateEncoder& encoder,
                                   std::size_t count, ThreadPool* pool)
    : encoder_(encoder) {
  if (count == 0) throw std::invalid_argument("DockingVectorEnv: need at least one env");
  envs_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    envs_.push_back(std::make_unique<metadock::DockingEnv>(scenario, config));
  }
  evaluator_ = std::make_unique<metadock::PoseEvaluator>(envs_.front()->scoring(), pool);
}

void DockingVectorEnv::reset(std::size_t i, std::span<double> state) {
  envs_[i]->reset();
  if (dynamicStates_) {
    encoder_.encodeDynamic(*envs_[i], state);
  } else {
    encoder_.encode(*envs_[i], state);
  }
}

void DockingVectorEnv::step(std::span<const int> actions, nn::Tensor& nextStates,
                            std::span<rl::EnvStep> results) {
  const std::size_t v = envs_.size();
  if (actions.size() != v || results.size() != v) {
    throw std::invalid_argument("DockingVectorEnv::step: actions/results size != size()");
  }
  if (nextStates.rows() != v || nextStates.cols() != stateDim()) {
    throw std::invalid_argument("DockingVectorEnv::step: nextStates shape mismatch");
  }
  if (v == 1) {
    // Nothing to batch: take the scalar path (bit-identical to the
    // sequential trainer's DockingEnv::step).
    results[0] = stepOne(0, actions[0], nextStates.row(0));
    return;
  }

  // Gather one candidate pose per env, score the whole population in a
  // single batched receptor sweep, then commit each env.
  poses_.clear();
  for (std::size_t i = 0; i < v; ++i) poses_.push_back(envs_[i]->candidatePose(actions[i]));
  const std::vector<double> scores = evaluator_->evaluateBatch(poses_);
  for (std::size_t i = 0; i < v; ++i) {
    const metadock::StepResult r = envs_[i]->stepScored(poses_[i], scores[i]);
    if (dynamicStates_) {
      encoder_.encodeDynamic(*envs_[i], nextStates.row(i));
    } else {
      encoder_.encode(*envs_[i], nextStates.row(i));
    }
    results[i] = {r.reward, r.terminal};
  }
  ++batchedSteps_;
}

rl::EnvStep DockingVectorEnv::stepOne(std::size_t i, int action, std::span<double> nextState) {
  const metadock::StepResult r = envs_[i]->step(action);
  if (dynamicStates_) {
    encoder_.encodeDynamic(*envs_[i], nextState);
  } else {
    encoder_.encode(*envs_[i], nextState);
  }
  return {r.reward, r.terminal};
}

std::size_t DockingVectorEnv::evaluationCount() const {
  std::size_t total = evaluator_->evaluationCount();
  for (const auto& e : envs_) total += e->evaluationCount();
  return total;
}

}  // namespace dqndock::core
