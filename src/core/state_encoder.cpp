#include "src/core/state_encoder.hpp"

#include <stdexcept>

namespace dqndock::core {

const char* stateModeName(StateMode m) {
  switch (m) {
    case StateMode::kLigandPositions: return "ligand-positions";
    case StateMode::kFullPositions: return "full-positions";
    case StateMode::kFullWithBonds: return "full-with-bonds";
  }
  return "?";
}

StateMode stateModeFromName(const std::string& name) {
  if (name == "ligand-positions") return StateMode::kLigandPositions;
  if (name == "full-positions") return StateMode::kFullPositions;
  if (name == "full-with-bonds") return StateMode::kFullWithBonds;
  throw std::invalid_argument("stateModeFromName: unknown mode '" + name + "'");
}

StateEncoder::StateEncoder(const chem::Scenario& scenario, StateMode mode, bool normalize)
    : mode_(mode), normalize_(normalize) {
  const chem::Molecule& receptor = scenario.receptor;
  const chem::Molecule& ligand = scenario.ligand;
  ligandAtoms_ = ligand.atomCount();

  origin_ = receptor.centerOfMass();
  const auto [lo, hi] = receptor.boundingBox();
  const double radius = 0.5 * (hi - lo).norm();
  invScale_ = (normalize_ && radius > 0.0) ? 1.0 / radius : 1.0;

  for (const auto& b : ligand.bonds()) ligandBonds_.emplace_back(b.a, b.b);

  // Precompute the static receptor block.
  if (mode_ != StateMode::kLigandPositions) {
    std::size_t at = 0;
    receptorBlock_.resize(3 * receptor.atomCount() +
                          (mode_ == StateMode::kFullWithBonds ? 3 * receptor.bondCount() : 0));
    for (const auto& p : receptor.positions()) writeVec(receptorBlock_, at, p, true);
    if (mode_ == StateMode::kFullWithBonds) {
      for (const auto& b : receptor.bonds()) {
        const Vec3 dir = (receptor.position(static_cast<std::size_t>(b.b)) -
                          receptor.position(static_cast<std::size_t>(b.a)))
                             .normalized();
        writeVec(receptorBlock_, at, dir, false);
      }
    }
  }

  dim_ = 3 * ligandAtoms_;
  if (mode_ != StateMode::kLigandPositions) dim_ += receptorBlock_.size();
  if (mode_ == StateMode::kFullWithBonds) dim_ += 3 * ligandBonds_.size();
}

void StateEncoder::writeVec(std::span<double> out, std::size_t& at, const Vec3& v,
                            bool isPosition) const {
  if (isPosition) {
    out[at++] = (v.x - origin_.x) * invScale_;
    out[at++] = (v.y - origin_.y) * invScale_;
    out[at++] = (v.z - origin_.z) * invScale_;
  } else {
    out[at++] = v.x;
    out[at++] = v.y;
    out[at++] = v.z;
  }
}

void StateEncoder::encodeFromPositions(std::span<const Vec3> ligandPositions,
                                       std::vector<double>& out) const {
  out.resize(dim_);
  encodeFromPositions(ligandPositions, std::span<double>(out));
}

void StateEncoder::encodeFromPositions(std::span<const Vec3> ligandPositions,
                                       std::span<double> out) const {
  if (out.size() != dim_) {
    throw std::invalid_argument("StateEncoder: output span size != dim()");
  }
  if (mode_ != StateMode::kLigandPositions) {
    std::copy(receptorBlock_.begin(), receptorBlock_.end(), out.begin());
  }
  encodeDynamicFromPositions(ligandPositions, out.subspan(receptorBlock_.size()));
}

void StateEncoder::encodeDynamicFromPositions(std::span<const Vec3> ligandPositions,
                                              std::vector<double>& out) const {
  out.resize(dynamicDim());
  encodeDynamicFromPositions(ligandPositions, std::span<double>(out));
}

void StateEncoder::encodeDynamicFromPositions(std::span<const Vec3> ligandPositions,
                                              std::span<double> out) const {
  if (ligandPositions.size() != ligandAtoms_) {
    throw std::invalid_argument("StateEncoder: ligand position count mismatch");
  }
  if (out.size() != dynamicDim()) {
    throw std::invalid_argument("StateEncoder: output span size != dynamicDim()");
  }
  std::size_t at = 0;
  for (const auto& p : ligandPositions) writeVec(out, at, p, true);
  if (mode_ == StateMode::kFullWithBonds) {
    for (const auto& [a, b] : ligandBonds_) {
      const Vec3 dir = (ligandPositions[static_cast<std::size_t>(b)] -
                        ligandPositions[static_cast<std::size_t>(a)])
                           .normalized();
      writeVec(out, at, dir, false);
    }
  }
}

void StateEncoder::encode(const metadock::DockingEnv& env, std::vector<double>& out) const {
  encodeFromPositions(env.ligandPositions(), out);
}

void StateEncoder::encode(const metadock::DockingEnv& env, std::span<double> out) const {
  encodeFromPositions(env.ligandPositions(), out);
}

void StateEncoder::encodeDynamic(const metadock::DockingEnv& env, std::vector<double>& out) const {
  encodeDynamicFromPositions(env.ligandPositions(), out);
}

void StateEncoder::encodeDynamic(const metadock::DockingEnv& env, std::span<double> out) const {
  encodeDynamicFromPositions(env.ligandPositions(), out);
}

}  // namespace dqndock::core
