#include "src/core/evaluation.hpp"

#include <algorithm>
#include <limits>

namespace dqndock::core {

EvaluationReport evaluatePolicy(DqnDocking& system, EvaluationOptions options) {
  EvaluationReport report;
  report.bestScore = -std::numeric_limits<double>::infinity();
  report.bestRmsd = std::numeric_limits<double>::infinity();

  metadock::DockingEnv& env = system.env();
  const StateEncoder& encoder = system.encoder();
  rl::DqnAgent& agent = system.agent();
  const std::size_t evalsBefore = env.evaluationCount();

  std::vector<double> state;
  double meanAcc = 0.0;
  for (std::size_t e = 0; e < options.episodes; ++e) {
    env.reset();
    encoder.encode(env, state);
    double episodeBest = env.score();
    double episodeBestRmsd = env.rmsdToCrystal();
    bool success = episodeBestRmsd <= options.successRmsd;
    while (!env.terminated()) {
      const int action = agent.greedyAction(state);
      env.step(action);
      encoder.encode(env, state);
      episodeBest = std::max(episodeBest, env.score());
      const double rmsd = env.rmsdToCrystal();
      episodeBestRmsd = std::min(episodeBestRmsd, rmsd);
      success = success || rmsd <= options.successRmsd;
    }
    report.bestScore = std::max(report.bestScore, episodeBest);
    report.bestRmsd = std::min(report.bestRmsd, episodeBestRmsd);
    meanAcc += episodeBest;
    if (success) ++report.successes;
    ++report.episodes;
  }
  report.successRate =
      report.episodes ? static_cast<double>(report.successes) / report.episodes : 0.0;
  report.meanEpisodeScore = report.episodes ? meanAcc / report.episodes : 0.0;
  report.scoringEvaluations = env.evaluationCount() - evalsBefore;
  return report;
}

}  // namespace dqndock::core
