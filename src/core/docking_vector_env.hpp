#pragma once

/// \file docking_vector_env.hpp
/// V independent DockingEnv instances stepped in lockstep, with the per
/// step candidate poses of the whole population scored by ONE
/// PoseEvaluator::evaluateBatch call — a single receptor sweep through
/// the pose-batched SoA kernel instead of V scalar sweeps.
///
/// Bit-identity note: ScoringFunction::scoreBatch agrees with the scalar
/// scorePose path to ~1e-9 relative (different accumulation order), not
/// bitwise. At V=1 there is nothing to batch, so step() routes through
/// DockingEnv::step() — the exact scalar path the sequential trainer
/// uses — which is what makes the V=1 run reproduce the sequential run
/// bit-for-bit. For V>1 the batched scores are used for reward and
/// termination bookkeeping alike, so each run is self-consistent and
/// deterministic (evaluateBatch chunking is thread-count invariant).

#include <memory>
#include <vector>

#include "src/core/state_encoder.hpp"
#include "src/metadock/docking_env.hpp"
#include "src/rl/vector_env.hpp"

namespace dqndock::core {

class DockingVectorEnv final : public rl::VectorEnv {
 public:
  /// Builds `count` identical envs from the scenario. `pool` (may be
  /// nullptr) parallelizes the batched pose evaluation only; per-env
  /// scalar evaluation follows config.scoring.pool as usual.
  DockingVectorEnv(const chem::Scenario& scenario, const metadock::EnvConfig& config,
                   const StateEncoder& encoder, std::size_t count, ThreadPool* pool = nullptr);

  std::size_t size() const override { return envs_.size(); }
  std::size_t stateDim() const override {
    return dynamicStates_ ? encoder_.dynamicDim() : encoder_.dim();
  }
  int actionCount() const override { return envs_.front()->actionCount(); }

  /// When enabled, reset()/step()/stepOne() materialise only the dynamic
  /// suffix of each encoded state and stateDim() shrinks to match (see
  /// DockingTask::setDynamicStates).
  void setDynamicStates(bool on) { dynamicStates_ = on; }
  bool dynamicStates() const { return dynamicStates_; }

  void reset(std::size_t i, std::span<double> state) override;
  void step(std::span<const int> actions, nn::Tensor& nextStates,
            std::span<rl::EnvStep> results) override;
  rl::EnvStep stepOne(std::size_t i, int action, std::span<double> nextState) override;
  double score(std::size_t i) const override { return envs_[i]->score(); }

  std::size_t batchedSteps() const override { return batchedSteps_; }

  metadock::DockingEnv& env(std::size_t i) { return *envs_[i]; }
  const metadock::DockingEnv& env(std::size_t i) const { return *envs_[i]; }
  const StateEncoder& encoder() const { return encoder_; }

  /// Total scoring-function invocations across all envs plus the shared
  /// batched evaluator (the pose-evals/s numerator in bench_training).
  std::size_t evaluationCount() const;

 private:
  std::vector<std::unique_ptr<metadock::DockingEnv>> envs_;
  const StateEncoder& encoder_;
  /// Shared batched evaluator over env 0's scoring function. All envs
  /// are built from the same scenario, so one receptor/ligand model
  /// scores every env's candidate pose.
  std::unique_ptr<metadock::PoseEvaluator> evaluator_;
  std::vector<metadock::Pose> poses_;  ///< per-step candidate gather, reused
  std::size_t batchedSteps_ = 0;
  bool dynamicStates_ = false;
};

}  // namespace dqndock::core
