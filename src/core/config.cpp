#include "src/core/config.hpp"

namespace dqndock::core {

DqnDockingConfig DqnDockingConfig::paper2bsm() {
  DqnDockingConfig cfg;
  cfg.scenario = chem::ScenarioSpec::paper2bsm();

  cfg.env.shiftStep = 1.0;        // Table 1: shifting length per step
  cfg.env.rotateStepDeg = 0.5;    // Table 1: rotating angle per step
  cfg.env.maxSteps = 1000;        // Table 1: T
  cfg.env.scoreFloor = -100000.0; // Section 3
  cfg.env.floorPatience = 20;     // Section 3
  cfg.env.boundaryFactor = 4.0 / 3.0;

  cfg.stateMode = StateMode::kFullWithBonds;  // 16,599 reals for 2BSM
  cfg.normalizeStates = true;

  cfg.agent.gamma = 0.99;
  cfg.agent.learningRate = 0.00025;
  cfg.agent.optimizer = "rmsprop";
  cfg.agent.batchSize = 32;
  cfg.agent.targetSyncInterval = 1000;  // C
  cfg.agent.hiddenSizes = {135, 135};   // 45 x 3 atoms of the ligand
  cfg.agent.variant = rl::DqnVariant::kVanilla;

  cfg.trainer.episodes = 1800;       // M
  cfg.trainer.learningStart = 10000; // Table 1: learning start
  cfg.trainer.epsilon = rl::EpsilonSchedule(1.0, 0.05, 4.5e-5, 20000);
  cfg.trainer.seed = 2018;

  cfg.replayCapacity = 400000;  // N
  cfg.compactReplay = false;    // the paper stores raw states
  return cfg;
}

DqnDockingConfig DqnDockingConfig::scaled() {
  DqnDockingConfig cfg = paper2bsm();
  cfg.scenario = chem::ScenarioSpec::tiny();

  cfg.env.maxSteps = 120;
  cfg.env.scoreFloor = -100000.0;

  cfg.stateMode = StateMode::kLigandPositions;
  cfg.agent.hiddenSizes = {64, 64};

  cfg.trainer.episodes = 60;
  cfg.trainer.learningStart = 300;
  cfg.trainer.epsilon = rl::EpsilonSchedule(1.0, 0.05, 2e-4, 600);

  cfg.replayCapacity = 20000;
  cfg.compactReplay = true;
  return cfg;
}

}  // namespace dqndock::core
