#include "src/core/docking_task.hpp"

namespace dqndock::core {

DockingTask::DockingTask(metadock::DockingEnv& env, const StateEncoder& encoder)
    : env_(env), encoder_(encoder) {}

void DockingTask::reset(std::vector<double>& state) {
  env_.reset();
  previousPose_ = env_.pose();
  if (dynamicStates_) {
    encoder_.encodeDynamic(env_, state);
  } else {
    encoder_.encode(env_, state);
  }
}

rl::EnvStep DockingTask::step(int action, std::vector<double>& nextState) {
  previousPose_ = env_.pose();
  const metadock::StepResult result = env_.step(action);
  if (dynamicStates_) {
    encoder_.encodeDynamic(env_, nextState);
  } else {
    encoder_.encode(env_, nextState);
  }
  return {result.reward, result.terminal};
}

}  // namespace dqndock::core
