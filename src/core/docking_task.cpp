#include "src/core/docking_task.hpp"

namespace dqndock::core {

DockingTask::DockingTask(metadock::DockingEnv& env, const StateEncoder& encoder)
    : env_(env), encoder_(encoder) {}

void DockingTask::reset(std::vector<double>& state) {
  env_.reset();
  previousPose_ = env_.pose();
  encoder_.encode(env_, state);
}

rl::EnvStep DockingTask::step(int action, std::vector<double>& nextState) {
  previousPose_ = env_.pose();
  const metadock::StepResult result = env_.step(action);
  encoder_.encode(env_, nextState);
  return {result.reward, result.terminal};
}

}  // namespace dqndock::core
