#include "src/core/pose_replay.hpp"

#include <stdexcept>

namespace dqndock::core {

PoseReplayBuffer::PoseReplayBuffer(std::size_t capacity, const DockingTask& task)
    : capacity_(capacity), task_(task) {
  if (capacity == 0) throw std::invalid_argument("PoseReplayBuffer: capacity must be > 0");
  slots_.resize(capacity);
}

void PoseReplayBuffer::push(std::span<const double> /*state*/, int action, double reward,
                            std::span<const double> /*nextState*/, bool terminal) {
  pushPose(task_.previousPose(), action, reward, task_.currentPose(), terminal);
}

void PoseReplayBuffer::pushPose(const metadock::Pose& pose, int action, double reward,
                                const metadock::Pose& nextPose, bool terminal) {
  Slot& slot = slots_[head_];
  slot.pose = pose;
  slot.nextPose = nextPose;
  slot.action = action;
  slot.reward = static_cast<float>(reward);
  slot.terminal = terminal;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

rl::Minibatch PoseReplayBuffer::sample(std::size_t batch, Rng& rng) const {
  if (count_ == 0) throw std::logic_error("PoseReplayBuffer::sample: buffer is empty");
  const StateEncoder& encoder = task_.encoder();
  const metadock::LigandModel& ligand = task_.env().ligand();
  // Width follows the task: in dynamic-state mode (fold-active
  // Q-network) only the changing suffix is re-encoded per sample.
  const bool dynamic = task_.dynamicStates();
  const std::size_t dim = task_.stateDim();

  rl::Minibatch mb;
  mb.states.resize(batch, dim);
  mb.nextStates.resize(batch, dim);
  mb.actions.resize(batch);
  mb.rewards.resize(batch);
  mb.terminals.resize(batch);

  std::vector<Vec3> positions;
  std::vector<double> encoded;
  for (std::size_t b = 0; b < batch; ++b) {
    const Slot& slot = slots_[rng.uniformInt(count_)];
    ligand.applyPose(slot.pose, positions);
    if (dynamic) {
      encoder.encodeDynamicFromPositions(positions, encoded);
    } else {
      encoder.encodeFromPositions(positions, encoded);
    }
    std::copy(encoded.begin(), encoded.end(), mb.states.data() + b * dim);
    ligand.applyPose(slot.nextPose, positions);
    if (dynamic) {
      encoder.encodeDynamicFromPositions(positions, encoded);
    } else {
      encoder.encodeFromPositions(positions, encoded);
    }
    std::copy(encoded.begin(), encoded.end(), mb.nextStates.data() + b * dim);
    mb.actions[b] = slot.action;
    mb.rewards[b] = slot.reward;
    mb.terminals[b] = slot.terminal ? 1 : 0;
  }
  return mb;
}

std::size_t PoseReplayBuffer::memoryBytes() const {
  std::size_t bytes = slots_.size() * sizeof(Slot);
  // Torsion vectors allocate out-of-line.
  for (const auto& slot : slots_) {
    bytes += (slot.pose.torsions.capacity() + slot.nextPose.torsions.capacity()) * sizeof(double);
  }
  return bytes;
}

}  // namespace dqndock::core
