#pragma once

/// \file evaluation.hpp
/// Docking-standard policy evaluation: roll the greedy policy for K
/// episodes and report the metrics the docking literature uses — best
/// score, best RMSD to the crystallographic pose, and the success rate
/// under the conventional "RMSD below 2 Angstrom" criterion — plus the
/// scoring-evaluation cost, which is the paper's headline economic
/// argument for a trained policy.

#include "src/core/dqn_docking.hpp"

namespace dqndock::core {

struct EvaluationOptions {
  std::size_t episodes = 5;
  /// An episode "succeeds" when the ligand gets within this RMSD of the
  /// crystallographic pose at any step (2 A is the community convention).
  double successRmsd = 2.0;
};

struct EvaluationReport {
  std::size_t episodes = 0;
  std::size_t successes = 0;
  double successRate = 0.0;
  double bestScore = 0.0;        ///< best score over all episodes/steps
  double bestRmsd = 0.0;         ///< lowest RMSD-to-crystal reached
  double meanEpisodeScore = 0.0; ///< mean of per-episode best scores
  std::size_t scoringEvaluations = 0;  ///< METADOCK calls consumed
};

/// Evaluate `system`'s current greedy policy. Does not train; the
/// environment is reset between episodes. Deterministic (greedy policy +
/// deterministic env), so multiple episodes differ only if the policy
/// leaves the deterministic start (they measure stability, not variance).
EvaluationReport evaluatePolicy(DqnDocking& system, EvaluationOptions options = {});

}  // namespace dqndock::core
