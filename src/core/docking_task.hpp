#pragma once

/// \file docking_task.hpp
/// Adapter presenting the METADOCK DockingEnv as an rl::Environment.
/// Keeps the pose of the state before the latest step so the compact
/// pose-based replay buffer can record (pose, action, reward, pose')
/// tuples instead of full state vectors.

#include "src/core/state_encoder.hpp"
#include "src/metadock/docking_env.hpp"
#include "src/rl/env.hpp"

namespace dqndock::core {

class DockingTask final : public rl::Environment {
 public:
  DockingTask(metadock::DockingEnv& env, const StateEncoder& encoder);

  std::size_t stateDim() const override {
    return dynamicStates_ ? encoder_.dynamicDim() : encoder_.dim();
  }
  int actionCount() const override { return env_.actionCount(); }

  /// When enabled, reset()/step() materialise only the dynamic suffix of
  /// the encoded state (encoder().dynamicDim() reals) and stateDim()
  /// shrinks to match — the state width a fold-active Q-network consumes
  /// directly. Callers must size replay storage accordingly.
  void setDynamicStates(bool on) { dynamicStates_ = on; }
  bool dynamicStates() const { return dynamicStates_; }

  void reset(std::vector<double>& state) override;
  rl::EnvStep step(int action, std::vector<double>& nextState) override;

  double score() const override { return env_.score(); }

  /// Pose of the state observed *before* the latest step() call.
  const metadock::Pose& previousPose() const { return previousPose_; }
  /// Pose after the latest step()/reset().
  const metadock::Pose& currentPose() const { return env_.pose(); }

  metadock::Termination terminationReason() const { return env_.terminationReason(); }

  metadock::DockingEnv& env() { return env_; }
  const metadock::DockingEnv& env() const { return env_; }
  const StateEncoder& encoder() const { return encoder_; }

 private:
  metadock::DockingEnv& env_;
  const StateEncoder& encoder_;
  metadock::Pose previousPose_;
  bool dynamicStates_ = false;
};

}  // namespace dqndock::core
