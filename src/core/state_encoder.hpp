#pragma once

/// \file state_encoder.hpp
/// Flattens METADOCK's internal state into the real vector the Q-network
/// consumes (paper Section 3: "vectors x_t in R^d representing the
/// position of the atoms of the ligand and receptor and their respective
/// bonds").
///
/// Three modes:
///  * kLigandPositions — only the coordinates that actually change
///    (paper Table 1 sizes the hidden layers by exactly this: 45 x 3 =
///    135 for 2BSM); cheapest, used by the scaled presets.
///  * kFullPositions — receptor + ligand coordinates.
///  * kFullWithBonds — receptor + ligand coordinates plus one unit
///    direction vector per bond; with the 2BSM dimensions this is the
///    paper's 16,599-real state.
///
/// Coordinates are normalised (receptor COM origin, receptor bounding
/// radius scale) so the MLP sees O(1) inputs.

#include <string>
#include <vector>

#include "src/chem/synthetic.hpp"
#include "src/metadock/docking_env.hpp"

namespace dqndock::core {

enum class StateMode : unsigned char {
  kLigandPositions = 0,
  kFullPositions,
  kFullWithBonds,
};

const char* stateModeName(StateMode m);
StateMode stateModeFromName(const std::string& name);

class StateEncoder {
 public:
  StateEncoder(const chem::Scenario& scenario, StateMode mode, bool normalize = true);

  StateMode mode() const { return mode_; }
  std::size_t dim() const { return dim_; }

  /// Static-prefix / dynamic-suffix contract: the encoded state is laid
  /// out as [receptor block | ligand positions | ligand bond dirs]. The
  /// receptor block is scenario-constant (precomputed once), so the
  /// first staticPrefixLen() reals of every encode() output are
  /// identical across steps — the invariant the Q-network's folded
  /// input-layer path (nn::Mlp::configureStaticPrefix) builds on. Zero
  /// in kLigandPositions mode (nothing static to fold).
  std::size_t staticPrefixLen() const { return receptorBlock_.size(); }
  /// Reals that actually change between steps (dim() - staticPrefixLen()).
  std::size_t dynamicDim() const { return dim_ - receptorBlock_.size(); }
  /// The constant prefix values themselves (normalised receptor block).
  std::span<const double> staticPrefix() const { return receptorBlock_; }

  /// Encode the environment's current state.
  void encode(const metadock::DockingEnv& env, std::vector<double>& out) const;
  /// Same, into a preallocated row of exactly dim() doubles (the
  /// vectorized trainer encodes straight into rows of a V x dim tensor).
  void encode(const metadock::DockingEnv& env, std::span<double> out) const;

  /// Encode only the dynamic suffix (ligand positions + bond dirs) into
  /// exactly dynamicDim() doubles — what the folded training/serving
  /// paths materialise instead of the full state.
  void encodeDynamic(const metadock::DockingEnv& env, std::vector<double>& out) const;
  void encodeDynamic(const metadock::DockingEnv& env, std::span<double> out) const;

  /// Encode from raw ligand coordinates (used by the pose-based replay to
  /// re-materialise states without touching the environment).
  void encodeFromPositions(std::span<const Vec3> ligandPositions,
                           std::vector<double>& out) const;
  void encodeFromPositions(std::span<const Vec3> ligandPositions, std::span<double> out) const;

  /// Dynamic-suffix-only variants of encodeFromPositions.
  void encodeDynamicFromPositions(std::span<const Vec3> ligandPositions,
                                  std::vector<double>& out) const;
  void encodeDynamicFromPositions(std::span<const Vec3> ligandPositions,
                                  std::span<double> out) const;

 private:
  void writeVec(std::span<double> out, std::size_t& at, const Vec3& v, bool isPosition) const;

  StateMode mode_;
  bool normalize_;
  std::size_t dim_ = 0;
  Vec3 origin_;        ///< receptor center of mass
  double invScale_ = 1.0;

  // Static receptor features, precomputed once (normalised).
  std::vector<double> receptorBlock_;
  // Ligand bond topology for the per-bond direction features.
  std::vector<std::pair<int, int>> ligandBonds_;
  std::size_t ligandAtoms_ = 0;
};

}  // namespace dqndock::core
