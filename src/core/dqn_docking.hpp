#pragma once

/// \file dqn_docking.hpp
/// The DQN-Docking system facade: wires the synthetic (or user-supplied)
/// scenario, the METADOCK environment, the state encoder, the replay
/// buffer and the DQN agent into one trainable object. This is the
/// public entry point most examples use:
///
///   auto cfg = core::DqnDockingConfig::scaled();
///   core::DqnDocking system(cfg, &ThreadPool::global());
///   const rl::MetricsLog& log = system.train();   // Figure 4 series
///   auto greedy = system.evaluateGreedy();        // trained policy

#include <memory>
#include <optional>

#include "src/core/config.hpp"
#include "src/core/docking_task.hpp"
#include "src/core/docking_vector_env.hpp"
#include "src/core/pose_replay.hpp"
#include "src/rl/nstep.hpp"
#include "src/rl/prioritized_replay.hpp"

namespace dqndock::core {

class DqnDocking {
 public:
  /// Builds everything from the config. `pool` parallelises scoring and
  /// the NN GEMMs; nullptr runs single-threaded.
  explicit DqnDocking(DqnDockingConfig config, ThreadPool* pool = nullptr);

  /// Builds on a caller-provided scenario (e.g. loaded from real PDB
  /// files) instead of the synthetic one in config.scenario.
  DqnDocking(DqnDockingConfig config, chem::Scenario scenario, ThreadPool* pool = nullptr);

  std::size_t stateDim() const { return encoder_->dim(); }
  int actionCount() const { return env_->actionCount(); }
  /// True when the static-prefix input-layer fold is live for this run:
  /// the env adapters emit dynamic-suffix states, replay stores them at
  /// that width, and the agent's nets run the folded input-layer path.
  bool foldActive() const { return agent_->foldActive(); }

  /// Train for config.trainer.episodes episodes; returns the metrics the
  /// paper's Figure 4 is drawn from.
  const rl::MetricsLog& train();

  /// Run one more training episode (incremental use).
  rl::EpisodeRecord trainEpisode();

  /// One greedy (epsilon = 0) evaluation episode with learning disabled.
  rl::EpisodeRecord evaluateGreedy();

  const rl::MetricsLog& metrics() const { return trainer_->metrics(); }

  // Component access for tests, benches and custom loops.
  metadock::DockingEnv& env() { return *env_; }
  DockingTask& task() { return *task_; }
  /// Non-null when config.vectorEnvs >= 1 (the trainer then runs the
  /// vectorized lockstep schedule over these envs instead of task()).
  DockingVectorEnv* vectorEnv() { return vectorEnv_.get(); }
  /// The env the trainer (and evaluateGreedy) actually steps: env 0 of
  /// the vector env in vectorized mode, task().env() otherwise.
  metadock::DockingEnv& trainingEnv() { return vectorEnv_ ? vectorEnv_->env(0) : *env_; }
  rl::DqnAgent& agent() { return *agent_; }
  rl::Trainer& trainer() { return *trainer_; }
  const StateEncoder& encoder() const { return *encoder_; }
  const chem::Scenario& scenario() const { return scenario_; }
  const DqnDockingConfig& config() const { return config_; }

  /// Bytes held by the replay buffer (raw vs compact comparison).
  std::size_t replayMemoryBytes() const;

  /// The raw-state replay buffer. Only valid when the default raw
  /// storage is active (no compact/prioritized replay) — equivalence
  /// tests compare stored transitions across trainer schedules.
  const rl::ReplayBuffer& rawReplay() const { return *rawReplay_; }

 private:
  void build(ThreadPool* pool);

  DqnDockingConfig config_;
  chem::Scenario scenario_;
  std::unique_ptr<metadock::DockingEnv> env_;
  std::unique_ptr<StateEncoder> encoder_;
  std::unique_ptr<DockingTask> task_;
  std::unique_ptr<DockingVectorEnv> vectorEnv_;
  std::unique_ptr<rl::ReplayBuffer> rawReplay_;
  std::unique_ptr<PoseReplayBuffer> poseReplay_;
  std::unique_ptr<rl::PrioritizedReplayBuffer> prioritizedReplay_;
  std::unique_ptr<rl::NStepSink> nstepSink_;
  std::unique_ptr<rl::DqnAgent> agent_;
  std::unique_ptr<rl::Trainer> trainer_;
};

}  // namespace dqndock::core
