#pragma once

/// \file config_io.hpp
/// Text (INI-style) serialization of DqnDockingConfig, so experiments are
/// driven by versionable config files instead of code edits:
///
///   # dqn-docking run configuration
///   [scenario]
///   receptor_atoms = 3264
///   ligand_atoms = 45
///   [env]
///   shift_step = 1.0
///   max_steps = 1000
///   [agent]
///   optimizer = rmsprop
///   hidden = 135,135
///   ...
///
/// Unknown keys raise errors (catching typos); missing keys keep the
/// preset's value, so a file only states deviations from the base preset.

#include <iosfwd>
#include <string>

#include "src/core/config.hpp"

namespace dqndock::core {

/// Write every tunable of `cfg` as an INI document.
void writeConfig(std::ostream& out, const DqnDockingConfig& cfg);
void writeConfigFile(const std::string& path, const DqnDockingConfig& cfg);

/// Apply an INI document on top of `base` and return the result.
/// Throws std::runtime_error with the line number for syntax errors,
/// unknown sections/keys, or unparsable values.
DqnDockingConfig readConfig(std::istream& in, DqnDockingConfig base = DqnDockingConfig::scaled());
DqnDockingConfig readConfigFile(const std::string& path,
                                DqnDockingConfig base = DqnDockingConfig::scaled());

}  // namespace dqndock::core
