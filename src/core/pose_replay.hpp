#pragma once

/// \file pose_replay.hpp
/// Compact, pose-based experience replay — the "RAM-based communication"
/// refinement of paper Section 5, limitation 1.
///
/// The paper's implementation stores full state vectors (16,599 reals for
/// 2BSM) per transition; at N = 400,000 memories that is tens of
/// gigabytes. But a docking state is a deterministic function of the
/// ligand pose (7 + K reals), so this buffer stores only the pose pair
/// and re-encodes states through the LigandModel + StateEncoder at sample
/// time — a ~2,000x memory reduction for the paper's configuration,
/// traded against encode work per sampled minibatch (bench_replay
/// quantifies both sides).
///
/// The sink interface ignores the raw vectors the trainer pushes and
/// instead reads (previousPose, currentPose) from the DockingTask, which
/// must be the environment the trainer is stepping.

#include "src/core/docking_task.hpp"
#include "src/rl/replay_buffer.hpp"

namespace dqndock::core {

class PoseReplayBuffer final : public rl::ExperienceSource, public rl::ExperienceSink {
 public:
  PoseReplayBuffer(std::size_t capacity, const DockingTask& task);

  /// ExperienceSink: `state`/`nextState` contents are ignored; the pose
  /// pair is read from the bound DockingTask.
  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override;

  /// Direct pose push (used by tests and custom loops).
  void pushPose(const metadock::Pose& pose, int action, double reward,
                const metadock::Pose& nextPose, bool terminal);

  std::size_t size() const override { return count_; }
  std::size_t capacity() const { return capacity_; }

  rl::Minibatch sample(std::size_t batch, Rng& rng) const override;

  /// Approximate resident bytes of the stored experience.
  std::size_t memoryBytes() const;

 private:
  struct Slot {
    metadock::Pose pose;
    metadock::Pose nextPose;
    int action = 0;
    float reward = 0.0f;
    bool terminal = false;
  };

  std::size_t capacity_;
  const DockingTask& task_;
  std::vector<Slot> slots_;
  std::size_t count_ = 0;
  std::size_t head_ = 0;
};

}  // namespace dqndock::core
