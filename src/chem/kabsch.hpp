#pragma once

/// \file kabsch.hpp
/// Optimal rigid superposition (Kabsch 1976). Docking papers report
/// ligand RMSD after optimal alignment when comparing binding *modes*
/// rather than absolute placements; index-wise rmsd() measures the
/// latter. This implementation diagonalises the 3x3 cross-covariance
/// with a cyclic Jacobi eigen-solver (no external linear-algebra
/// dependency) and handles the reflection case.

#include <span>
#include <vector>

#include "src/common/mat3.hpp"
#include "src/common/vec3.hpp"

namespace dqndock::chem {

/// Result of an optimal superposition of `mobile` onto `target`:
/// the affine map p' = rotation * p + translation.
struct Superposition {
  Mat3 rotation;
  Vec3 translation;
  double rmsd = 0.0;   ///< minimal achievable RMSD
};

/// Computes the rigid transform minimising RMSD between point sets of
/// equal size (>= 1). Throws std::invalid_argument on size mismatch or
/// empty input.
Superposition kabsch(std::span<const Vec3> mobile, std::span<const Vec3> target);

/// Minimal RMSD after optimal superposition.
double alignedRmsd(std::span<const Vec3> a, std::span<const Vec3> b);

/// Apply a superposition to a point set (out-of-place).
std::vector<Vec3> applySuperposition(const Superposition& sp, std::span<const Vec3> mobile);

/// Symmetric 3x3 eigen-decomposition by cyclic Jacobi rotations.
/// `values` descend; `vectors` columns are the matching eigenvectors.
void symmetricEigen3(const Mat3& m, double values[3], Mat3& vectors);

}  // namespace dqndock::chem
