#pragma once

/// \file pdb_io.hpp
/// Reader/writer for a practical subset of the PDB format: ATOM/HETATM
/// coordinate records, optional PQR-style trailing charge column, and
/// CONECT connectivity. This is how a user drops the *real* 2BSM
/// structure from wwPDB into the library in place of the synthetic
/// surrogate scenario.

#include <iosfwd>
#include <string>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

struct PdbReadOptions {
  bool hetatm = true;          ///< include HETATM records
  bool perceiveBonds = false;  ///< infer bonds from geometry when no CONECT
  double bondScale = 1.2;      ///< covalent-radius scale for perception
};

/// Parse PDB content from a stream. Throws std::runtime_error with the
/// offending line number on malformed ATOM/HETATM records.
Molecule readPdb(std::istream& in, const PdbReadOptions& opts = {});

/// Parse a PDB file from disk. Throws on I/O failure.
Molecule readPdbFile(const std::string& path, const PdbReadOptions& opts = {});

/// Write ATOM records (+ CONECT when the molecule has bonds).
void writePdb(std::ostream& out, const Molecule& mol);
void writePdbFile(const std::string& path, const Molecule& mol);

}  // namespace dqndock::chem
