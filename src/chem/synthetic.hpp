#pragma once

/// \file synthetic.hpp
/// Deterministic synthetic docking scenarios.
///
/// The paper evaluates on the wwPDB receptor-ligand pair 2BSM (3,264-atom
/// receptor, 45-atom ligand with 6 rotatable bonds, state vector of
/// 16,599 reals). The crystal structure itself is not redistributable
/// here, so this module builds a structural surrogate with the same
/// dimensions and the same qualitative scoring landscape:
///
///  * a globular receptor with protein-like atom composition and density,
///  * a surface pocket lined with charges/acceptors complementary to the
///    ligand (so the crystallographic pose is a genuine score optimum),
///  * a branched drug-like ligand (tree topology, exactly the requested
///    rotatable-bond count),
///  * an initial pose far from the receptor along the pocket axis
///    (paper Figure 3, position A) and the crystallographic pose inside
///    the pocket (position B).
///
/// Everything is generated from one seed, so tests, benches and training
/// runs are exactly reproducible. Real PDB files can replace the
/// surrogate via chem::readPdbFile without touching any other module.

#include <cstdint>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/common/rng.hpp"

namespace dqndock::chem {

struct ScenarioSpec {
  std::size_t receptorAtoms = 3264;
  std::size_t ligandAtoms = 45;
  std::size_t ligandRotatableBonds = 6;
  /// Number of receptor bonds emitted as state features. The paper's
  /// 16,599-real state = 3*(receptorAtoms + ligandAtoms + receptor bonds
  /// + ligand bonds); with a 45-atom tree ligand (44 bonds) that pins
  /// receptor bonds at 2,180.
  std::size_t receptorBondFeatures = 2180;
  /// Ratio of initial ligand COM distance to receptor radius (>1 puts the
  /// ligand outside the receptor, Figure 3 position A).
  double initialDistanceFactor = 2.0;
  /// Extra clearance between pocket wall and ligand, Angstrom.
  double pocketClearance = 2.0;
  std::uint64_t seed = 2018;

  /// Full-size preset matching the paper's 2BSM dimensions.
  static ScenarioSpec paper2bsm();
  /// Small preset for unit tests and fast benches (~300 receptor atoms).
  static ScenarioSpec tiny();
};

/// A complete docking problem instance.
struct Scenario {
  Molecule receptor;               ///< fixed target molecule
  Molecule ligand;                 ///< agent molecule, positions = initial pose
  std::vector<Vec3> crystalPositions;  ///< known solution pose (Figure 3, B)
  Vec3 pocketCenter;               ///< center of the binding pocket
  Vec3 pocketAxis;                 ///< outward unit axis of the pocket
  double initialComDistance = 0.0; ///< |ligand COM - receptor COM| at reset
};

/// Build a scenario from a spec. Deterministic in spec.seed.
Scenario buildScenario(const ScenarioSpec& spec);

/// Build a standalone drug-like ligand: tree topology, `atoms` atoms,
/// exactly min(requested, achievable) rotatable bonds. Centered on its
/// centroid.
Molecule buildLigand(std::size_t atoms, std::size_t rotatableBonds, Rng& rng);

/// Generate `count` random ligands of sizes in [minAtoms, maxAtoms] for
/// virtual-screening experiments.
std::vector<Molecule> buildLigandLibrary(std::size_t count, std::size_t minAtoms,
                                         std::size_t maxAtoms, Rng& rng);

}  // namespace dqndock::chem
