#include "src/chem/pdb_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/chem/topology.hpp"

namespace dqndock::chem {

namespace {

std::string columns(const std::string& line, std::size_t start, std::size_t len) {
  if (line.size() <= start) return "";
  return line.substr(start, len);
}

double parseDouble(const std::string& s, std::size_t lineNo, const char* what) {
  try {
    std::size_t pos = 0;
    // Strip spaces manually so fully-blank fields raise a clear error.
    std::string trimmed;
    for (char c : s)
      if (!std::isspace(static_cast<unsigned char>(c))) trimmed.push_back(c);
    if (trimmed.empty()) throw std::invalid_argument("empty");
    const double v = std::stod(trimmed, &pos);
    if (pos != trimmed.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("PDB parse error at line " + std::to_string(lineNo) + ": bad " +
                             what + " field '" + s + "'");
  }
}

Element elementOfRecord(const std::string& line) {
  // Columns 77-78 hold the element symbol; fall back to the atom-name
  // field (columns 13-16) for minimal files.
  Element e = elementFromSymbol(columns(line, 76, 2));
  if (e == Element::Unknown) {
    const std::string name = columns(line, 12, 4);
    for (char c : name) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        e = elementFromSymbol(std::string(1, c));
        break;
      }
    }
  }
  return e;
}

}  // namespace

Molecule readPdb(std::istream& in, const PdbReadOptions& opts) {
  Molecule mol;
  std::string line;
  std::size_t lineNo = 0;
  // PDB serial -> our index (serials can be sparse / restart at TER).
  std::map<long, int> serialToIndex;
  std::set<std::pair<int, int>> seenBonds;

  while (std::getline(in, line)) {
    ++lineNo;
    const std::string rec = columns(line, 0, 6);
    const bool isAtom = rec.rfind("ATOM", 0) == 0;
    const bool isHet = rec.rfind("HETATM", 0) == 0;
    if (isAtom || (isHet && opts.hetatm)) {
      if (line.size() < 54) {
        throw std::runtime_error("PDB parse error at line " + std::to_string(lineNo) +
                                 ": record too short for coordinates");
      }
      const double x = parseDouble(columns(line, 30, 8), lineNo, "x");
      const double y = parseDouble(columns(line, 38, 8), lineNo, "y");
      const double z = parseDouble(columns(line, 46, 8), lineNo, "z");
      const Element e = elementOfRecord(line);
      // PQR extension: some tools place the charge in the occupancy
      // column (55-60); plain PDB has 1.00 there, which we ignore.
      double charge = ForceField::standard().defaultCharge(e);
      const std::string occ = columns(line, 54, 6);
      bool blank = true;
      for (char c : occ)
        if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
      if (!blank) {
        const double v = parseDouble(occ, lineNo, "occupancy/charge");
        if (v != 1.0) charge = v;
      }
      const int idx = mol.addAtom(e, Vec3{x, y, z}, charge);
      long serial = idx + 1;
      const std::string serialField = columns(line, 6, 5);
      try {
        serial = std::stol(serialField);
      } catch (const std::exception&) {
        // keep sequential fallback
      }
      serialToIndex[serial] = idx;
    } else if (rec.rfind("CONECT", 0) == 0) {
      std::istringstream ss(line.substr(6));
      long from = 0;
      if (!(ss >> from)) continue;
      const auto it = serialToIndex.find(from);
      if (it == serialToIndex.end()) continue;
      long to = 0;
      while (ss >> to) {
        const auto jt = serialToIndex.find(to);
        if (jt == serialToIndex.end()) continue;
        const int a = std::min(it->second, jt->second);
        const int b = std::max(it->second, jt->second);
        if (a != b && seenBonds.insert({a, b}).second) mol.addBond(a, b);
      }
    }
  }

  if (mol.bondCount() == 0 && opts.perceiveBonds) {
    perceiveBonds(mol, opts.bondScale);
  }
  mol.validate();
  return mol;
}

Molecule readPdbFile(const std::string& path, const PdbReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readPdbFile: cannot open " + path);
  Molecule mol = readPdb(in, opts);
  mol.setName(path);
  return mol;
}

void writePdb(std::ostream& out, const Molecule& mol) {
  char buf[96];
  for (std::size_t i = 0; i < mol.atomCount(); ++i) {
    const Vec3& p = mol.position(i);
    const std::string sym(elementSymbol(mol.element(i)));
    std::snprintf(buf, sizeof buf,
                  "ATOM  %5zu %-4s LIG A   1    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
                  i + 1, sym.c_str(), p.x, p.y, p.z, mol.charge(i), 0.0, sym.c_str());
    out << buf;
  }
  for (const auto& b : mol.bonds()) {
    std::snprintf(buf, sizeof buf, "CONECT%5d%5d\n", b.a + 1, b.b + 1);
    out << buf;
  }
  out << "END\n";
}

void writePdbFile(const std::string& path, const Molecule& mol) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writePdbFile: cannot open " + path);
  writePdb(out, mol);
}

}  // namespace dqndock::chem
