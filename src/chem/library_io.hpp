#pragma once

/// \file library_io.hpp
/// Streaming ligand-library reader for virtual screening at library
/// scale. A million-ligand library must never be materialised whole in
/// one process: the screening service shards it by global ligand index,
/// and every shard-holder (coordinator, workers, the single-process
/// pipeline) streams just its [begin, end) range from the same file.
///
/// Two formats, picked by extension:
///
///   * `.smi` / `.txt` — one ligand per line: `SMILES [name]` (the
///     de-facto ZINC distribution format the paper cites). 3-D geometry
///     is the deterministic SMILES embedding, seeded by the ligand's
///     global index, so every reader of the file builds bit-identical
///     molecules for the same index regardless of which range it reads.
///   * `.mol2` — concatenated Tripos MOL2 blocks (one @<TRIPOS>MOLECULE
///     per ligand), the multi-molecule form docking tools exchange.
///
/// Rotatable bonds are perceived on load (Autodock-style), so streamed
/// ligands flow straight into the torsional docking machinery.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

class LigandLibraryReader {
 public:
  /// Opens the library and scans it once to count ligands. Throws
  /// std::runtime_error when the file cannot be opened, its extension is
  /// not a known library format, or it contains no ligands.
  explicit LigandLibraryReader(const std::string& path);

  const std::string& path() const { return path_; }
  std::size_t size() const { return count_; }

  /// Materialise ligands [begin, end) — global indices, end clamped to
  /// size(). Forward reads from an advancing cursor are streamed without
  /// re-scanning; a backward seek rewinds the file first. Throws on
  /// malformed records (with the offending global index).
  std::vector<Molecule> read(std::size_t begin, std::size_t end);

  /// Convenience: the whole library.
  std::vector<Molecule> readAll() { return read(0, size()); }

 private:
  enum class Format { kSmiles, kMol2 };

  void rewind();
  /// Advance the stream by one ligand record without building it.
  void skipRecord();
  Molecule readRecord();

  std::string path_;
  Format format_ = Format::kSmiles;
  std::ifstream in_;
  std::size_t count_ = 0;
  std::size_t cursor_ = 0;  ///< global index of the next record in the stream
};

/// Write `library` as a .smi file (SMILES + name per line) readable by
/// LigandLibraryReader. Geometry is not stored — readers re-embed from
/// the SMILES deterministically — so the file, not the writer's in-memory
/// coordinates, is the source of truth every screening process shares.
void writeSmilesLibraryFile(const std::string& path, const std::vector<Molecule>& library);

/// Generate a deterministic synthetic screening library of `count`
/// drug-like ligands (sizes in [minAtoms, maxAtoms], seeded tree
/// topologies) and write it to `path` as .smi. Returns the ligand count
/// written. Used by examples, tests and the screening bench to make
/// realistic shared inputs without redistributing real compound sets.
std::size_t writeSyntheticLibraryFile(const std::string& path, std::size_t count,
                                      std::size_t minAtoms, std::size_t maxAtoms,
                                      std::uint64_t seed);

}  // namespace dqndock::chem
