#pragma once

/// \file topology.hpp
/// Connectivity analysis: adjacency, components, ring membership, bond
/// perception from geometry, and rotatable-bond detection (the torsional
/// degrees of freedom of a flexible ligand, paper Section 5 limitation 3).

#include <vector>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

/// Adjacency list of a molecule's bond graph.
class Topology {
 public:
  explicit Topology(const Molecule& mol);

  int atomCount() const { return static_cast<int>(adj_.size()); }

  const std::vector<int>& neighbors(int atom) const { return adj_[static_cast<std::size_t>(atom)]; }
  int degree(int atom) const { return static_cast<int>(adj_[static_cast<std::size_t>(atom)].size()); }

  /// Component id per atom (0-based) and the number of components.
  std::vector<int> connectedComponents(int* count = nullptr) const;

  /// True when removing bond index `bondIdx` leaves its endpoints
  /// connected (i.e. the bond lies on a ring).
  bool bondInRing(const Molecule& mol, std::size_t bondIdx) const;

  /// For each hydrogen, the index of its bonded heavy atom, or -1 when
  /// unbonded/not a hydrogen. Drives the H-bond angular term.
  std::vector<int> hydrogenAnchors(const Molecule& mol) const;

 private:
  std::vector<std::vector<int>> adj_;
};

/// Infer bonds from geometry: a pair is bonded when their distance is
/// below scale * (covalentRadius(a) + covalentRadius(b)). Existing bonds
/// are replaced. Returns the number of bonds created.
std::size_t perceiveBonds(Molecule& mol, double scale = 1.2);

/// Mark as rotatable every bond that is (a) not in a ring, (b) not
/// terminal (both endpoints have degree >= 2). Returns the indices of the
/// rotatable bonds. This follows the standard docking definition of a
/// torsion (Autodock-style).
std::vector<std::size_t> detectRotatableBonds(Molecule& mol);

/// Atom indices on the `b`-side of bond (a, b) when the bond is cut —
/// i.e. the set of atoms a torsion about that bond rotates. Throws if the
/// bond lies on a ring (the two sides are then not separable).
std::vector<int> atomsMovedByTorsion(const Molecule& mol, const Bond& bond);

}  // namespace dqndock::chem
