#pragma once

/// \file mol2_io.hpp
/// Tripos MOL2 reader/writer — the de-facto ligand interchange format of
/// docking pipelines (METADOCK, AutoDock tooling and the ZINC library
/// the paper cites all consume it). Supports the MOLECULE, ATOM and BOND
/// record types; atom partial charges round-trip through the standard
/// ninth column.

#include <iosfwd>
#include <string>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

/// Parse MOL2 content (first molecule in the stream). Throws
/// std::runtime_error on malformed ATOM/BOND records.
Molecule readMol2(std::istream& in);
Molecule readMol2File(const std::string& path);

void writeMol2(std::ostream& out, const Molecule& mol);
void writeMol2File(const std::string& path, const Molecule& mol);

}  // namespace dqndock::chem
