#include "src/chem/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/chem/topology.hpp"
#include "src/common/mat3.hpp"

namespace dqndock::chem {

namespace {

/// Protein-like heavy-atom composition (fractions sum to 1).
Element sampleReceptorElement(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.62) return Element::C;
  if (u < 0.78) return Element::N;
  if (u < 0.97) return Element::O;
  return Element::S;
}

Element sampleLigandHeavyElement(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.70) return Element::C;
  if (u < 0.85) return Element::N;
  return Element::O;
}

/// Radius (Angstrom) of a protein-density sphere holding `atoms` atoms
/// (~10 A^3 per atom).
double receptorRadiusFor(std::size_t atoms) {
  const double volume = 10.0 * static_cast<double>(atoms);
  return std::cbrt(volume * 3.0 / (4.0 * 3.14159265358979323846));
}

/// Largest distance from the centroid to any atom.
double boundingRadius(const Molecule& mol) {
  const Vec3 c = mol.centroid();
  double r2 = 0.0;
  for (const auto& p : mol.positions()) r2 = std::max(r2, distance2(p, c));
  return std::sqrt(r2);
}

}  // namespace

ScenarioSpec ScenarioSpec::paper2bsm() { return ScenarioSpec{}; }

ScenarioSpec ScenarioSpec::tiny() {
  ScenarioSpec s;
  s.receptorAtoms = 300;
  s.ligandAtoms = 12;
  s.ligandRotatableBonds = 2;
  s.receptorBondFeatures = 150;
  return s;
}

Molecule buildLigand(std::size_t atoms, std::size_t rotatableBonds, Rng& rng) {
  if (atoms == 0) throw std::invalid_argument("buildLigand: atoms must be > 0");
  Molecule mol("synthetic-ligand");

  // Grow a self-avoiding branched tree: each new atom attaches to a
  // random existing atom with free valence, at covalent distance in a
  // direction biased away from existing atoms.
  const double bondLen = 1.5;
  std::vector<int> valence;  // remaining attachment slots
  mol.addAtom(sampleLigandHeavyElement(rng), Vec3{0, 0, 0});
  valence.push_back(3);

  while (mol.atomCount() < atoms) {
    // Pick a host with free valence.
    std::vector<int> hosts;
    for (std::size_t i = 0; i < valence.size(); ++i) {
      if (valence[i] > 0) hosts.push_back(static_cast<int>(i));
    }
    if (hosts.empty()) {  // re-open the last atom rather than fail
      hosts.push_back(static_cast<int>(mol.atomCount()) - 1);
      valence.back() = 1;
    }
    const int host = hosts[rng.uniformInt(hosts.size())];

    // Find a direction that keeps the new atom >1.2 A from others.
    Vec3 pos;
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      const Vec3 dir = rng.unitVector<Vec3>();
      pos = mol.position(static_cast<std::size_t>(host)) + dir * bondLen;
      placed = true;
      for (std::size_t i = 0; i < mol.atomCount(); ++i) {
        if (static_cast<int>(i) == host) continue;
        if (distance2(mol.position(i), pos) < 1.2 * 1.2) {
          placed = false;
          break;
        }
      }
    }
    // Terminal hydrogens once the heavy skeleton is ~2/3 built.
    const bool hydrogen = mol.atomCount() * 3 > atoms * 2;
    const Element e = hydrogen ? Element::H : sampleLigandHeavyElement(rng);
    double q = ForceField::standard().defaultCharge(e);
    HBondRole role = HBondRole::kNone;
    if (e == Element::O || e == Element::N) role = HBondRole::kAcceptor;
    if (e == Element::H && rng.bernoulli(0.3)) {
      role = HBondRole::kDonorHydrogen;
      q = 0.25;
    }
    const int idx = mol.addAtom(e, pos, q, role);
    mol.addBond(host, idx);
    valence[static_cast<std::size_t>(host)]--;
    valence.push_back(e == Element::H ? 0 : (rng.bernoulli(0.35) ? 2 : 1));
  }

  // Net positive charge so the (negatively lined) pocket attracts it.
  for (std::size_t i = 0; i < mol.atomCount(); ++i) {
    if (mol.element(i) == Element::N && rng.bernoulli(0.5)) mol.setCharge(i, 0.5);
  }

  // Mark exactly `rotatableBonds` torsions among the eligible ones.
  auto eligible = detectRotatableBonds(mol);
  auto bonds = mol.mutableBonds();
  for (auto idx : eligible) bonds[idx].rotatable = false;
  const std::size_t keep = std::min(rotatableBonds, eligible.size());
  // Spread the kept torsions across the eligible list deterministically.
  for (std::size_t k = 0; k < keep; ++k) {
    const std::size_t pick = eligible[k * eligible.size() / (keep == 0 ? 1 : keep)];
    bonds[pick].rotatable = true;
  }

  mol.translate(-mol.centroid());
  mol.validate();
  return mol;
}

std::vector<Molecule> buildLigandLibrary(std::size_t count, std::size_t minAtoms,
                                         std::size_t maxAtoms, Rng& rng) {
  if (minAtoms == 0 || maxAtoms < minAtoms) {
    throw std::invalid_argument("buildLigandLibrary: bad atom range");
  }
  std::vector<Molecule> lib;
  lib.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t atoms =
        minAtoms + rng.uniformInt(static_cast<std::uint64_t>(maxAtoms - minAtoms + 1));
    lib.push_back(buildLigand(atoms, 2 + rng.uniformInt(5), rng));
    lib.back().setName("lib-ligand-" + std::to_string(i));
  }
  return lib;
}

Scenario buildScenario(const ScenarioSpec& spec) {
  Rng rng(spec.seed);
  Scenario sc;

  // ---- Ligand first: the pocket is carved to fit it. -------------------
  sc.ligand = buildLigand(spec.ligandAtoms, spec.ligandRotatableBonds, rng);
  const double ligRadius = boundingRadius(sc.ligand);

  // ---- Receptor: jittered cubic lattice inside a sphere, minus pocket. -
  const double R = receptorRadiusFor(spec.receptorAtoms) + ligRadius * 0.3;
  sc.pocketAxis = Vec3{0, 0, 1};
  const double pocketR = ligRadius + spec.pocketClearance;
  // Pocket cavity: sphere of radius pocketR centered at depth pocketR/2
  // below the receptor surface along +z.
  sc.pocketCenter = sc.pocketAxis * (R - pocketR * 0.5);

  const double a = 2.2;  // lattice spacing, Angstrom
  std::vector<Vec3> sites;
  const int nmax = static_cast<int>(std::ceil((R + a) / a));
  for (int ix = -nmax; ix <= nmax; ++ix) {
    for (int iy = -nmax; iy <= nmax; ++iy) {
      for (int iz = -nmax; iz <= nmax; ++iz) {
        Vec3 p{ix * a, iy * a, iz * a};
        p += Vec3{rng.gaussian(0, 0.25), rng.gaussian(0, 0.25), rng.gaussian(0, 0.25)};
        if (p.norm() > R) continue;
        if (distance(p, sc.pocketCenter) < pocketR) continue;  // carve pocket
        sites.push_back(p);
      }
    }
  }
  if (sites.size() < spec.receptorAtoms) {
    throw std::runtime_error("buildScenario: lattice produced too few receptor sites");
  }
  // Keep the innermost `receptorAtoms` sites so the surface stays smooth.
  std::sort(sites.begin(), sites.end(),
            [](const Vec3& l, const Vec3& r) { return l.norm2() < r.norm2(); });
  sites.resize(spec.receptorAtoms);

  sc.receptor.setName("synthetic-receptor");
  const double ligandCharge = sc.ligand.totalCharge();
  for (const auto& p : sites) {
    const Element e = sampleReceptorElement(rng);
    double q = ForceField::standard().defaultCharge(e) * rng.uniform(0.5, 1.5);
    HBondRole role = HBondRole::kNone;
    if (e == Element::O || e == Element::N) role = HBondRole::kAcceptor;
    // Pocket lining: complementary charge so the crystallographic pose is
    // a genuine electrostatic optimum.
    if (distance(p, sc.pocketCenter) < pocketR + 2.5 && ligandCharge != 0.0) {
      q = -0.4 * (ligandCharge > 0 ? 1.0 : -1.0) * rng.uniform(0.8, 1.2);
      role = HBondRole::kAcceptor;
    }
    sc.receptor.addAtom(e, p, q, role);
  }

  // Bond features: the `receptorBondFeatures` shortest neighbour pairs.
  // (These are state-vector features; the receptor is rigid, so they are
  // never used for mechanics.)
  struct Pair {
    double d2;
    int a, b;
  };
  std::vector<Pair> pairs;
  const double cut2 = (a * 1.45) * (a * 1.45);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const double d2 = distance2(sites[i], sites[j]);
      if (d2 < cut2) pairs.push_back({d2, static_cast<int>(i), static_cast<int>(j)});
    }
  }
  if (pairs.size() < spec.receptorBondFeatures) {
    throw std::runtime_error("buildScenario: too few receptor neighbour pairs for bond features");
  }
  std::nth_element(pairs.begin(), pairs.begin() + static_cast<long>(spec.receptorBondFeatures),
                   pairs.end(), [](const Pair& l, const Pair& r) { return l.d2 < r.d2; });
  pairs.resize(spec.receptorBondFeatures);
  for (const auto& pr : pairs) sc.receptor.addBond(pr.a, pr.b);
  sc.receptor.validate();

  // ---- Poses: crystallographic (in pocket) and initial (far away). -----
  // Crystal pose: ligand centroid at the pocket center.
  sc.crystalPositions.assign(sc.ligand.positions().begin(), sc.ligand.positions().end());
  for (auto& p : sc.crystalPositions) p += sc.pocketCenter;

  // Initial pose (paper Figure 3 A): along the pocket axis, outside the
  // receptor at initialDistanceFactor * R from the receptor COM.
  sc.ligand.translate(sc.pocketAxis * (spec.initialDistanceFactor * R));
  sc.initialComDistance = distance(sc.ligand.centerOfMass(), sc.receptor.centerOfMass());
  return sc;
}

}  // namespace dqndock::chem
