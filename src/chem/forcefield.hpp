#pragma once

/// \file forcefield.hpp
/// Non-bonded force-field parameters backing METADOCK's scoring function
/// (Eq. 1 of the paper): partial charges for the electrostatic term
/// [Gilson 1988], MMFF94-style Lennard-Jones well depths/diameters for the
/// van-der-Waals term [Halgren 1996], and the 12-10 hydrogen-bond well
/// constants [Fabiola 2002].
///
/// Units: distance in Angstrom, charge in elementary charges, energy in
/// kcal/mol.

#include <array>
#include <span>
#include <vector>

#include "src/chem/element.hpp"

namespace dqndock::chem {

/// Coulomb constant: kcal * Angstrom / (mol * e^2).
constexpr double kCoulomb = 332.0636;

/// Per-element Lennard-Jones parameters (Lorentz-Berthelot combined at
/// pair level by the scoring code).
struct LjParams {
  double sigma;    ///< Angstrom: zero-crossing distance of the 12-6 potential.
  double epsilon;  ///< kcal/mol: well depth.
};

/// Hydrogen-bond role of an atom.
enum class HBondRole : unsigned char {
  kNone = 0,
  kDonorHydrogen,  ///< polar hydrogen attached to N/O/S
  kAcceptor,       ///< lone-pair-bearing N/O
};

/// 12-10 hydrogen-bond well parameters for a donor-H...acceptor pair:
/// E = C/r^12 - D/r^10, calibrated for a ~-0.5 kcal/mol well near 1.9 A.
struct HBondParams {
  double c12;
  double d10;
};

/// Contiguous mixed-pair parameter rows for data-oriented kernels:
/// epsilon[i] and sigma2[i] hold the Lorentz-Berthelot combined well
/// depth and *squared* zero-crossing distance of the pair
/// (probe, atoms[i]). Squaring sigma up front lets the inner loop form
/// (sigma/r)^2 from one squared distance without a square root.
struct PairRowTable {
  std::vector<double> epsilon;
  std::vector<double> sigma2;
};

class ForceField {
 public:
  /// The library's built-in parameter set (MMFF94-like).
  static const ForceField& standard();

  LjParams lj(Element e) const { return lj_[static_cast<std::size_t>(e)]; }

  /// Combined pair parameters: Lorentz (arithmetic sigma) / Berthelot
  /// (geometric epsilon) rules.
  LjParams ljPair(Element a, Element b) const;

  /// Flat pair rows of ljPair(probe, atoms[i]) for every i — the export
  /// the SoA scoring kernel and affinity-map fill stream per ligand
  /// element.
  PairRowTable pairRows(Element probe, std::span<const Element> atoms) const;

  HBondParams hbond() const { return hbond_; }

  /// Default partial charge assigned to an element when the input format
  /// carries none (synthetic molecules override per-atom).
  double defaultCharge(Element e) const { return charge_[static_cast<std::size_t>(e)]; }

 private:
  ForceField();

  std::array<LjParams, kElementCount> lj_{};
  std::array<double, kElementCount> charge_{};
  HBondParams hbond_{};
};

}  // namespace dqndock::chem
