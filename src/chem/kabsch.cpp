#include "src/chem/kabsch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::chem {

namespace {

Vec3 centroidOf(std::span<const Vec3> pts) {
  Vec3 c;
  for (const auto& p : pts) c += p;
  return c / static_cast<double>(pts.size());
}

Vec3 column(const Mat3& m, int c) { return {m(0, c), m(1, c), m(2, c)}; }

void setColumn(Mat3& m, int c, const Vec3& v) {
  m(0, c) = v.x;
  m(1, c) = v.y;
  m(2, c) = v.z;
}

double det3(const Mat3& m) {
  return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
         m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
         m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

}  // namespace

void symmetricEigen3(const Mat3& m, double values[3], Mat3& vectors) {
  // Cyclic Jacobi: rotate away the largest off-diagonal element until
  // convergence. 3x3 symmetric matrices converge in a handful of sweeps.
  Mat3 a = m;
  vectors = Mat3::identity();
  for (int sweep = 0; sweep < 64; ++sweep) {
    // Largest off-diagonal magnitude.
    int p = 0, q = 1;
    double off = std::fabs(a(0, 1));
    if (std::fabs(a(0, 2)) > off) {
      off = std::fabs(a(0, 2));
      p = 0;
      q = 2;
    }
    if (std::fabs(a(1, 2)) > off) {
      off = std::fabs(a(1, 2));
      p = 1;
      q = 2;
    }
    if (off < 1e-15) break;

    const double apq = a(p, q);
    const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
    const double t = (theta >= 0 ? 1.0 : -1.0) /
                     (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
    const double c = 1.0 / std::sqrt(t * t + 1.0);
    const double s = t * c;

    Mat3 rot = Mat3::identity();
    rot(p, p) = c;
    rot(q, q) = c;
    rot(p, q) = s;
    rot(q, p) = -s;
    a = rot.transposed() * a * rot;
    vectors = vectors * rot;
  }
  values[0] = a(0, 0);
  values[1] = a(1, 1);
  values[2] = a(2, 2);

  // Sort descending, permuting eigenvector columns alongside.
  int order[3] = {0, 1, 2};
  std::sort(order, order + 3, [&](int l, int r) { return values[l] > values[r]; });
  const double v0 = values[order[0]], v1 = values[order[1]], v2 = values[order[2]];
  Mat3 sorted;
  setColumn(sorted, 0, column(vectors, order[0]));
  setColumn(sorted, 1, column(vectors, order[1]));
  setColumn(sorted, 2, column(vectors, order[2]));
  values[0] = v0;
  values[1] = v1;
  values[2] = v2;
  vectors = sorted;
}

Superposition kabsch(std::span<const Vec3> mobile, std::span<const Vec3> target) {
  if (mobile.size() != target.size()) throw std::invalid_argument("kabsch: size mismatch");
  if (mobile.empty()) throw std::invalid_argument("kabsch: empty point sets");

  const Vec3 cm = centroidOf(mobile);
  const Vec3 ct = centroidOf(target);

  // Cross-covariance H = sum (m - cm)(t - ct)^T and centered norms.
  Mat3 h;
  h.m.fill(0.0);
  double normM = 0.0, normT = 0.0;
  for (std::size_t i = 0; i < mobile.size(); ++i) {
    const Vec3 m = mobile[i] - cm;
    const Vec3 t = target[i] - ct;
    normM += m.norm2();
    normT += t.norm2();
    h(0, 0) += m.x * t.x;
    h(0, 1) += m.x * t.y;
    h(0, 2) += m.x * t.z;
    h(1, 0) += m.y * t.x;
    h(1, 1) += m.y * t.y;
    h(1, 2) += m.y * t.z;
    h(2, 0) += m.z * t.x;
    h(2, 1) += m.z * t.y;
    h(2, 2) += m.z * t.z;
  }

  // SVD of H via the symmetric eigen-decomposition of H^T H = V S^2 V^T.
  const Mat3 hth = h.transposed() * h;
  double lambda[3];
  Mat3 v;
  symmetricEigen3(hth, lambda, v);
  double sigma[3];
  for (int k = 0; k < 3; ++k) sigma[k] = std::sqrt(std::max(0.0, lambda[k]));

  // Left singular vectors u_k = H v_k / sigma_k; for (near-)zero singular
  // values complete the basis with a cross product (degenerate/planar
  // point sets).
  Mat3 u;
  for (int k = 0; k < 3; ++k) {
    Vec3 uk;
    if (sigma[k] > 1e-12) {
      uk = (h * column(v, k)) / sigma[k];
    } else {
      uk = column(u, (k + 1) % 3).cross(column(u, (k + 2) % 3));
      // When two singular values vanish (collinear sets) that cross
      // product may be zero; fall back to any unit vector orthogonal to
      // the first column.
      if (uk.norm2() < 1e-20 && k > 0) {
        const Vec3 u0 = column(u, 0);
        Vec3 candidate = u0.cross(Vec3{1, 0, 0});
        if (candidate.norm2() < 1e-12) candidate = u0.cross(Vec3{0, 1, 0});
        uk = (k == 1) ? candidate.normalized() : u0.cross(column(u, 1));
      }
    }
    setColumn(u, k, uk.normalized());
  }

  // Proper rotation: flip the smallest singular direction if det < 0.
  const double d = det3(u) * det3(v) < 0.0 ? -1.0 : 1.0;
  if (d < 0.0) setColumn(u, 2, -column(u, 2));

  Superposition sp;
  sp.rotation = u * v.transposed();
  // R maps mobile-centered coords onto target-centered coords; note
  // H = sum m t^T gives R = U V^T mapping *t* onto *m* frames depending
  // on convention — verify by construction: we want p' = R (p - cm) + ct.
  // With H as above the optimal R is V U^T... build both and pick the one
  // with lower residual to keep the implementation self-verifying.
  const Mat3 rA = u * v.transposed();
  const Mat3 rB = v * u.transposed();
  double errA = 0.0, errB = 0.0;
  for (std::size_t i = 0; i < mobile.size(); ++i) {
    const Vec3 m = mobile[i] - cm;
    const Vec3 t = target[i] - ct;
    errA += (rA * m - t).norm2();
    errB += (rB * m - t).norm2();
  }
  sp.rotation = errA <= errB ? rA : rB;
  sp.translation = ct - sp.rotation * cm;
  sp.rmsd = std::sqrt(std::min(errA, errB) / static_cast<double>(mobile.size()));
  return sp;
}

double alignedRmsd(std::span<const Vec3> a, std::span<const Vec3> b) {
  return kabsch(a, b).rmsd;
}

std::vector<Vec3> applySuperposition(const Superposition& sp, std::span<const Vec3> mobile) {
  std::vector<Vec3> out;
  out.reserve(mobile.size());
  for (const auto& p : mobile) out.push_back(sp.rotation * p + sp.translation);
  return out;
}

}  // namespace dqndock::chem
