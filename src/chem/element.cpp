#include "src/chem/element.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace dqndock::chem {

namespace {
struct ElementInfo {
  std::string_view symbol;
  double mass;             // Daltons
  double covalentRadius;   // Angstrom
};

// Indexed by Element value.
constexpr std::array<ElementInfo, kElementCount> kInfo{{
    {"H", 1.008, 0.31},
    {"C", 12.011, 0.76},
    {"N", 14.007, 0.71},
    {"O", 15.999, 0.66},
    {"S", 32.06, 1.05},
    {"P", 30.974, 1.07},
    {"F", 18.998, 0.57},
    {"Cl", 35.45, 1.02},
    {"Br", 79.904, 1.20},
    {"I", 126.904, 1.39},
    {"X", 0.0, 0.8},
}};
}  // namespace

std::string_view elementSymbol(Element e) {
  return kInfo[static_cast<std::size_t>(e)].symbol;
}

Element elementFromSymbol(std::string_view symbol) {
  // Trim and normalize case: first letter upper, rest lower.
  std::string s;
  for (char c : symbol) {
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  }
  if (s.empty()) return Element::Unknown;
  s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  for (std::size_t i = 1; i < s.size(); ++i) {
    s[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
  }
  for (int i = 0; i < kElementCount; ++i) {
    if (kInfo[static_cast<std::size_t>(i)].symbol == s) return static_cast<Element>(i);
  }
  return Element::Unknown;
}

double elementMass(Element e) { return kInfo[static_cast<std::size_t>(e)].mass; }

double covalentRadius(Element e) { return kInfo[static_cast<std::size_t>(e)].covalentRadius; }

}  // namespace dqndock::chem
