#pragma once

/// \file smiles.hpp
/// SMILES parser + 3-D embedding for drug-like ligands.
///
/// The ZINC library the paper cites for virtual-screening inputs
/// distributes compounds as SMILES strings, so a screening pipeline needs
/// at least a practical subset of the grammar. Supported here:
///
///   * organic-subset atoms: B C N O P S F Cl Br I (and H)
///   * aromatic lowercase forms (c n o s) — treated as their aliphatic
///     elements for the force field
///   * bracket atoms with charge: [N+], [O-], [NH3+], ...
///   * branches ( ... )
///   * ring-closure digits 1-9 and %nn
///   * bond symbols - = # (orders collapse to single bonds for the
///     non-bonded scoring model) and the no-op aromatic bond ':'
///
/// The generated geometry is a deterministic self-avoiding 3-D embedding
/// (covalent distances, no physical minimization) — sufficient for
/// docking engines that treat the ligand as a rigid/torsional body, which
/// is exactly METADOCK's model.

#include <string>
#include <string_view>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

/// Parse a SMILES string into a molecule with 3-D coordinates.
/// Throws std::runtime_error (with a character position) on unsupported
/// or malformed input. Deterministic in `seed`.
Molecule moleculeFromSmiles(std::string_view smiles, std::uint64_t seed = 1);

/// Emit a (canonical-ish, depth-first) SMILES string for a molecule whose
/// bond graph is a tree or simple cycle set. Round-trips atoms, bonds and
/// formal charges produced by moleculeFromSmiles.
std::string smilesFromMolecule(const Molecule& mol);

}  // namespace dqndock::chem
