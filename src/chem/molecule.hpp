#pragma once

/// \file molecule.hpp
/// Structure-of-arrays molecule representation shared by the receptor and
/// ligand. Positions live in a contiguous vector so the scoring kernels
/// stream them cache-friendly and the state encoder can flatten them
/// without copies.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/chem/element.hpp"
#include "src/chem/forcefield.hpp"
#include "src/common/mat3.hpp"
#include "src/common/vec3.hpp"

namespace dqndock::chem {

/// Covalent bond between atom indices `a` and `b`.
struct Bond {
  int a = 0;
  int b = 0;
  bool rotatable = false;  ///< torsional degree of freedom (ligand only)
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Append an atom; returns its index.
  int addAtom(Element e, const Vec3& pos, double charge,
              HBondRole role = HBondRole::kNone);

  /// Append an atom using the force field's default charge for `e`.
  int addAtom(Element e, const Vec3& pos);

  /// Append a bond. Indices must refer to existing atoms (checked).
  void addBond(int a, int b, bool rotatable = false);

  std::size_t atomCount() const { return positions_.size(); }
  std::size_t bondCount() const { return bonds_.size(); }
  bool empty() const { return positions_.empty(); }

  const Vec3& position(std::size_t i) const { return positions_[i]; }
  void setPosition(std::size_t i, const Vec3& p) { positions_[i] = p; }

  Element element(std::size_t i) const { return elements_[i]; }
  double charge(std::size_t i) const { return charges_[i]; }
  void setCharge(std::size_t i, double q) { charges_[i] = q; }
  HBondRole hbondRole(std::size_t i) const { return roles_[i]; }
  void setHBondRole(std::size_t i, HBondRole r) { roles_[i] = r; }

  std::span<const Vec3> positions() const { return positions_; }
  std::span<Vec3> mutablePositions() { return positions_; }
  std::span<const Element> elements() const { return elements_; }
  std::span<const double> charges() const { return charges_; }
  std::span<const HBondRole> hbondRoles() const { return roles_; }
  std::span<const Bond> bonds() const { return bonds_; }
  std::span<Bond> mutableBonds() { return bonds_; }

  /// Drop all bonds (used when re-perceiving connectivity).
  void clearBonds() { bonds_.clear(); }

  /// Mass-weighted center. Falls back to the centroid if total mass is 0.
  Vec3 centerOfMass() const;

  /// Unweighted mean of atom positions.
  Vec3 centroid() const;

  /// Axis-aligned bounding box as (min, max); zero box when empty.
  std::pair<Vec3, Vec3> boundingBox() const;

  /// Rigid-body transforms applied in place.
  void translate(const Vec3& delta);
  void rotateAbout(const Vec3& center, const Mat3& rotation);

  /// Net formal/partial charge of the whole molecule.
  double totalCharge() const;

  /// Throws std::invalid_argument on malformed data: bond indices out of
  /// range, self-bonds, or non-finite positions/charges.
  void validate() const;

 private:
  std::string name_;
  std::vector<Vec3> positions_;
  std::vector<Element> elements_;
  std::vector<double> charges_;
  std::vector<HBondRole> roles_;
  std::vector<Bond> bonds_;
};

/// Root-mean-square deviation between two conformations of the same
/// molecule (no alignment; positions compared index-wise). Throws if the
/// atom counts differ.
double rmsd(const Molecule& a, const Molecule& b);

/// RMSD between two raw coordinate sets.
double rmsd(std::span<const Vec3> a, std::span<const Vec3> b);

}  // namespace dqndock::chem
