#pragma once

/// \file xyz_io.hpp
/// XYZ coordinate format: atom count, comment line, then
/// "symbol x y z [charge]" rows. Round-trips molecules exactly enough for
/// checkpointing ligand conformations during training.

#include <iosfwd>
#include <string>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {

Molecule readXyz(std::istream& in);
Molecule readXyzFile(const std::string& path);

void writeXyz(std::ostream& out, const Molecule& mol, const std::string& comment = "");
void writeXyzFile(const std::string& path, const Molecule& mol, const std::string& comment = "");

}  // namespace dqndock::chem
