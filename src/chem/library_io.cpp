#include "src/chem/library_io.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "src/chem/mol2_io.hpp"
#include "src/chem/smiles.hpp"
#include "src/chem/synthetic.hpp"
#include "src/chem/topology.hpp"

namespace dqndock::chem {

namespace {

std::string lowerExtension(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return "";
  std::string ext = path.substr(dot + 1);
  for (char& c : ext) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return ext;
}

std::string trimmed(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

bool isSmilesRecord(const std::string& line) {
  const std::string t = trimmed(line);
  return !t.empty() && t[0] != '#';
}

}  // namespace

LigandLibraryReader::LigandLibraryReader(const std::string& path) : path_(path) {
  const std::string ext = lowerExtension(path);
  if (ext == "smi" || ext == "txt") {
    format_ = Format::kSmiles;
  } else if (ext == "mol2") {
    format_ = Format::kMol2;
  } else {
    throw std::runtime_error("LigandLibraryReader: unknown library format '." + ext +
                             "' for " + path + " (expected .smi/.txt/.mol2)");
  }
  in_.open(path);
  if (!in_) throw std::runtime_error("LigandLibraryReader: cannot open " + path);

  // One counting pass; the stream then rewinds for range reads.
  std::string line;
  if (format_ == Format::kSmiles) {
    while (std::getline(in_, line)) {
      if (isSmilesRecord(line)) ++count_;
    }
  } else {
    while (std::getline(in_, line)) {
      if (trimmed(line).rfind("@<TRIPOS>MOLECULE", 0) == 0) ++count_;
    }
  }
  if (count_ == 0) throw std::runtime_error("LigandLibraryReader: no ligands in " + path);
  rewind();
}

void LigandLibraryReader::rewind() {
  in_.clear();
  in_.seekg(0);
  cursor_ = 0;
  if (format_ == Format::kMol2) {
    // Position the stream on the first @<TRIPOS>MOLECULE header so each
    // record read starts at its own block.
    std::string line;
    while (in_.peek() != std::ifstream::traits_type::eof()) {
      const auto at = in_.tellg();
      if (!std::getline(in_, line)) break;
      if (trimmed(line).rfind("@<TRIPOS>MOLECULE", 0) == 0) {
        in_.seekg(at);
        break;
      }
    }
  }
}

void LigandLibraryReader::skipRecord() {
  std::string line;
  if (format_ == Format::kSmiles) {
    while (std::getline(in_, line)) {
      if (isSmilesRecord(line)) {
        ++cursor_;
        return;
      }
    }
  } else {
    // Consume this block's header line, then stop in front of the next.
    std::getline(in_, line);
    while (in_.peek() != std::ifstream::traits_type::eof()) {
      const auto at = in_.tellg();
      if (!std::getline(in_, line)) break;
      if (trimmed(line).rfind("@<TRIPOS>MOLECULE", 0) == 0) {
        in_.clear();
        in_.seekg(at);
        break;
      }
    }
    ++cursor_;
  }
}

Molecule LigandLibraryReader::readRecord() {
  const std::size_t index = cursor_;
  if (format_ == Format::kSmiles) {
    std::string line;
    while (std::getline(in_, line)) {
      if (!isSmilesRecord(line)) continue;
      std::istringstream fields(trimmed(line));
      std::string smiles, name;
      fields >> smiles >> name;
      if (name.empty()) name = "lig" + std::to_string(index);
      try {
        // The embedding seed is the global index, so any process reading
        // this record — whatever range it streams — builds the same
        // conformer.
        Molecule mol = moleculeFromSmiles(smiles, index + 1);
        mol.setName(name);
        detectRotatableBonds(mol);
        ++cursor_;
        return mol;
      } catch (const std::exception& e) {
        throw std::runtime_error("LigandLibraryReader: ligand " + std::to_string(index) +
                                 " (" + name + "): " + e.what());
      }
    }
    throw std::runtime_error("LigandLibraryReader: unexpected EOF at ligand " +
                             std::to_string(index));
  }

  // MOL2: collect this block's lines (header through the line before the
  // next header) and parse them as one molecule.
  std::string block, line;
  if (!std::getline(in_, line)) {
    throw std::runtime_error("LigandLibraryReader: unexpected EOF at ligand " +
                             std::to_string(index));
  }
  block += line + '\n';
  while (in_.peek() != std::ifstream::traits_type::eof()) {
    const auto at = in_.tellg();
    if (!std::getline(in_, line)) break;
    if (trimmed(line).rfind("@<TRIPOS>MOLECULE", 0) == 0) {
      in_.clear();
      in_.seekg(at);
      break;
    }
    block += line + '\n';
  }
  try {
    std::istringstream blockStream(block);
    Molecule mol = readMol2(blockStream);
    if (mol.name().empty()) mol.setName("lig" + std::to_string(index));
    detectRotatableBonds(mol);
    ++cursor_;
    return mol;
  } catch (const std::exception& e) {
    throw std::runtime_error("LigandLibraryReader: ligand " + std::to_string(index) + ": " +
                             e.what());
  }
}

std::vector<Molecule> LigandLibraryReader::read(std::size_t begin, std::size_t end) {
  end = std::min(end, count_);
  std::vector<Molecule> out;
  if (begin >= end) return out;
  if (begin < cursor_) rewind();
  while (cursor_ < begin) skipRecord();
  out.reserve(end - begin);
  while (cursor_ < end) out.push_back(readRecord());
  return out;
}

void writeSmilesLibraryFile(const std::string& path, const std::vector<Molecule>& library) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeSmilesLibraryFile: cannot open " + path);
  for (std::size_t i = 0; i < library.size(); ++i) {
    const std::string name =
        library[i].name().empty() ? "lig" + std::to_string(i) : library[i].name();
    out << smilesFromMolecule(library[i]) << ' ' << name << '\n';
  }
  if (!out) throw std::runtime_error("writeSmilesLibraryFile: write failed for " + path);
}

std::size_t writeSyntheticLibraryFile(const std::string& path, std::size_t count,
                                      std::size_t minAtoms, std::size_t maxAtoms,
                                      std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<Molecule> library = buildLigandLibrary(count, minAtoms, maxAtoms, rng);
  writeSmilesLibraryFile(path, library);
  return library.size();
}

}  // namespace dqndock::chem
