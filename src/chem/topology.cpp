#include "src/chem/topology.hpp"

#include <queue>
#include <stdexcept>

namespace dqndock::chem {

Topology::Topology(const Molecule& mol) {
  adj_.resize(mol.atomCount());
  for (const auto& b : mol.bonds()) {
    adj_[static_cast<std::size_t>(b.a)].push_back(b.b);
    adj_[static_cast<std::size_t>(b.b)].push_back(b.a);
  }
}

std::vector<int> Topology::connectedComponents(int* count) const {
  const int n = atomCount();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next = 0;
  std::queue<int> frontier;
  for (int start = 0; start < n; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    comp[static_cast<std::size_t>(start)] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int v : neighbors(u)) {
        if (comp[static_cast<std::size_t>(v)] == -1) {
          comp[static_cast<std::size_t>(v)] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  if (count) *count = next;
  return comp;
}

bool Topology::bondInRing(const Molecule& mol, std::size_t bondIdx) const {
  const Bond& bond = mol.bonds()[bondIdx];
  // BFS from bond.a to bond.b without traversing the bond itself.
  std::vector<char> seen(static_cast<std::size_t>(atomCount()), 0);
  std::queue<int> frontier;
  seen[static_cast<std::size_t>(bond.a)] = 1;
  frontier.push(bond.a);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int v : neighbors(u)) {
      if ((u == bond.a && v == bond.b) || (u == bond.b && v == bond.a)) continue;
      if (v == bond.b) return true;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        frontier.push(v);
      }
    }
  }
  return false;
}

std::vector<int> Topology::hydrogenAnchors(const Molecule& mol) const {
  std::vector<int> anchor(mol.atomCount(), -1);
  for (std::size_t i = 0; i < mol.atomCount(); ++i) {
    if (mol.element(i) != Element::H) continue;
    const auto& nb = neighbors(static_cast<int>(i));
    if (!nb.empty()) anchor[i] = nb.front();
  }
  return anchor;
}

std::size_t perceiveBonds(Molecule& mol, double scale) {
  mol.clearBonds();
  const auto pos = mol.positions();
  const std::size_t n = mol.atomCount();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double cutoff =
          scale * (covalentRadius(mol.element(i)) + covalentRadius(mol.element(j)));
      if (distance2(pos[i], pos[j]) <= cutoff * cutoff) {
        mol.addBond(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return mol.bondCount();
}

std::vector<std::size_t> detectRotatableBonds(Molecule& mol) {
  Topology topo(mol);
  std::vector<std::size_t> rotatable;
  auto bonds = mol.mutableBonds();
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    Bond& b = bonds[i];
    const bool terminal = topo.degree(b.a) < 2 || topo.degree(b.b) < 2;
    b.rotatable = !terminal && !topo.bondInRing(mol, i);
    if (b.rotatable) rotatable.push_back(i);
  }
  return rotatable;
}

std::vector<int> atomsMovedByTorsion(const Molecule& mol, const Bond& bond) {
  Topology topo(mol);
  // Flood fill from bond.b while never crossing back through bond.a.
  std::vector<char> seen(mol.atomCount(), 0);
  std::vector<int> moved;
  std::queue<int> frontier;
  seen[static_cast<std::size_t>(bond.b)] = 1;
  seen[static_cast<std::size_t>(bond.a)] = 1;  // blocked
  frontier.push(bond.b);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int v : topo.neighbors(u)) {
      if (v == bond.a && u == bond.b) continue;
      if (v == bond.a) {
        throw std::invalid_argument(
            "atomsMovedByTorsion: bond lies on a ring; torsion side is ambiguous");
      }
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        moved.push_back(v);
        frontier.push(v);
      }
    }
  }
  moved.push_back(bond.b);
  return moved;
}

}  // namespace dqndock::chem
