#include "src/chem/molecule.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dqndock::chem {

int Molecule::addAtom(Element e, const Vec3& pos, double charge, HBondRole role) {
  positions_.push_back(pos);
  elements_.push_back(e);
  charges_.push_back(charge);
  roles_.push_back(role);
  return static_cast<int>(positions_.size()) - 1;
}

int Molecule::addAtom(Element e, const Vec3& pos) {
  return addAtom(e, pos, ForceField::standard().defaultCharge(e));
}

void Molecule::addBond(int a, int b, bool rotatable) {
  const int n = static_cast<int>(atomCount());
  if (a < 0 || b < 0 || a >= n || b >= n) {
    throw std::invalid_argument("Molecule::addBond: atom index out of range");
  }
  if (a == b) throw std::invalid_argument("Molecule::addBond: self-bond");
  bonds_.push_back(Bond{a, b, rotatable});
}

Vec3 Molecule::centerOfMass() const {
  Vec3 acc;
  double mass = 0.0;
  for (std::size_t i = 0; i < atomCount(); ++i) {
    const double m = elementMass(elements_[i]);
    acc += positions_[i] * m;
    mass += m;
  }
  if (mass <= 0.0) return centroid();
  return acc / mass;
}

Vec3 Molecule::centroid() const {
  if (positions_.empty()) return {};
  Vec3 acc;
  for (const auto& p : positions_) acc += p;
  return acc / static_cast<double>(positions_.size());
}

std::pair<Vec3, Vec3> Molecule::boundingBox() const {
  if (positions_.empty()) return {Vec3{}, Vec3{}};
  Vec3 lo = positions_.front();
  Vec3 hi = positions_.front();
  for (const auto& p : positions_) {
    lo = lo.min(p);
    hi = hi.max(p);
  }
  return {lo, hi};
}

void Molecule::translate(const Vec3& delta) {
  for (auto& p : positions_) p += delta;
}

void Molecule::rotateAbout(const Vec3& center, const Mat3& rotation) {
  for (auto& p : positions_) p = center + rotation * (p - center);
}

double Molecule::totalCharge() const {
  double q = 0.0;
  for (double c : charges_) q += c;
  return q;
}

void Molecule::validate() const {
  const int n = static_cast<int>(atomCount());
  for (const auto& b : bonds_) {
    if (b.a < 0 || b.b < 0 || b.a >= n || b.b >= n) {
      throw std::invalid_argument("Molecule::validate: bond index out of range");
    }
    if (b.a == b.b) throw std::invalid_argument("Molecule::validate: self-bond");
  }
  for (std::size_t i = 0; i < atomCount(); ++i) {
    const Vec3& p = positions_[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.z)) {
      throw std::invalid_argument("Molecule::validate: non-finite position");
    }
    if (!std::isfinite(charges_[i])) {
      throw std::invalid_argument("Molecule::validate: non-finite charge");
    }
  }
}

double rmsd(std::span<const Vec3> a, std::span<const Vec3> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmsd: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += distance2(a[i], b[i]);
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double rmsd(const Molecule& a, const Molecule& b) {
  return rmsd(a.positions(), b.positions());
}

}  // namespace dqndock::chem
