#include "src/chem/forcefield.hpp"

#include <cmath>

namespace dqndock::chem {

ForceField::ForceField() {
  auto set = [this](Element e, double sigma, double epsilon, double q) {
    lj_[static_cast<std::size_t>(e)] = {sigma, epsilon};
    charge_[static_cast<std::size_t>(e)] = q;
  };
  // Sigma/epsilon values are in the MMFF94/AMBER ballpark; charges are the
  // neutral-atom fallbacks (formats that carry charges override them).
  set(Element::H, 2.00, 0.020, 0.10);
  set(Element::C, 3.40, 0.086, -0.05);
  set(Element::N, 3.25, 0.170, -0.40);
  set(Element::O, 3.00, 0.210, -0.45);
  set(Element::S, 3.55, 0.250, -0.20);
  set(Element::P, 3.70, 0.200, 0.40);
  set(Element::F, 2.95, 0.061, -0.20);
  set(Element::Cl, 3.45, 0.265, -0.10);
  set(Element::Br, 3.60, 0.320, -0.10);
  set(Element::I, 3.80, 0.400, -0.05);
  set(Element::Unknown, 3.40, 0.100, 0.0);

  // C/r^12 - D/r^10 with minimum at r0 = 1.9 A and depth 0.5 kcal/mol:
  //   at the minimum: 12 C / r^13 = 10 D / r^11  =>  C = (10/12) D r0^2
  //   depth: D/r0^10 - C/r0^12 = 0.5 (note C/r^12 - D/r^10 = -depth)
  const double r0 = 1.9;
  const double depth = 0.5;
  const double r0_10 = std::pow(r0, 10);
  const double r0_12 = std::pow(r0, 12);
  // Solve C/r0^12 - D/r0^10 = -depth with C = (5/6) D r0^2:
  //   (5/6) D / r0^10 - D / r0^10 = -depth  =>  D = 6 depth r0^10
  hbond_.d10 = 6.0 * depth * r0_10;
  hbond_.c12 = (5.0 / 6.0) * hbond_.d10 * r0 * r0;
  (void)r0_12;
}

const ForceField& ForceField::standard() {
  static const ForceField ff;
  return ff;
}

LjParams ForceField::ljPair(Element a, Element b) const {
  const LjParams pa = lj(a);
  const LjParams pb = lj(b);
  return {0.5 * (pa.sigma + pb.sigma), std::sqrt(pa.epsilon * pb.epsilon)};
}

PairRowTable ForceField::pairRows(Element probe, std::span<const Element> atoms) const {
  // Combine once per element, then gather per atom: kElementCount pair
  // evaluations instead of one per atom.
  std::array<LjParams, kElementCount> byElement;
  for (int e = 0; e < kElementCount; ++e) {
    byElement[static_cast<std::size_t>(e)] = ljPair(static_cast<Element>(e), probe);
  }
  PairRowTable rows;
  rows.epsilon.resize(atoms.size());
  rows.sigma2.resize(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const LjParams p = byElement[static_cast<std::size_t>(atoms[i])];
    rows.epsilon[i] = p.epsilon;
    rows.sigma2[i] = p.sigma * p.sigma;
  }
  return rows;
}

}  // namespace dqndock::chem
