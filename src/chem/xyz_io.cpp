#include "src/chem/xyz_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dqndock::chem {

Molecule readXyz(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("readXyz: empty input");
  std::size_t n = 0;
  try {
    n = static_cast<std::size_t>(std::stoul(line));
  } catch (const std::exception&) {
    throw std::runtime_error("readXyz: bad atom count line '" + line + "'");
  }
  std::getline(in, line);  // comment
  Molecule mol(line);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("readXyz: truncated after " + std::to_string(i) + " atoms");
    }
    std::istringstream ss(line);
    std::string sym;
    double x, y, z;
    if (!(ss >> sym >> x >> y >> z)) {
      throw std::runtime_error("readXyz: malformed atom line '" + line + "'");
    }
    const Element e = elementFromSymbol(sym);
    double q = ForceField::standard().defaultCharge(e);
    ss >> q;  // optional trailing charge
    mol.addAtom(e, Vec3{x, y, z}, q);
  }
  return mol;
}

Molecule readXyzFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readXyzFile: cannot open " + path);
  return readXyz(in);
}

void writeXyz(std::ostream& out, const Molecule& mol, const std::string& comment) {
  out << mol.atomCount() << '\n' << comment << '\n';
  out.precision(10);
  for (std::size_t i = 0; i < mol.atomCount(); ++i) {
    const Vec3& p = mol.position(i);
    out << elementSymbol(mol.element(i)) << ' ' << p.x << ' ' << p.y << ' ' << p.z << ' '
        << mol.charge(i) << '\n';
  }
}

void writeXyzFile(const std::string& path, const Molecule& mol, const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeXyzFile: cannot open " + path);
  writeXyz(out, mol, comment);
}

}  // namespace dqndock::chem
