#include "src/chem/mol2_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dqndock::chem {

namespace {

/// SYBYL atom types look like "C.3", "N.ar", "O.co2" — the element is the
/// part before the dot.
Element elementFromSybyl(const std::string& type) {
  const auto dot = type.find('.');
  return elementFromSymbol(dot == std::string::npos ? type : type.substr(0, dot));
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

Molecule readMol2(std::istream& in) {
  Molecule mol;
  std::string line;
  enum class Section { kNone, kMolecule, kAtom, kBond } section = Section::kNone;
  std::size_t lineNo = 0;
  int moleculeHeaderLine = 0;

  while (std::getline(in, line)) {
    ++lineNo;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    if (t.rfind("@<TRIPOS>", 0) == 0) {
      const std::string tag = t.substr(9);
      if (tag == "MOLECULE") {
        if (section != Section::kNone) break;  // a second molecule starts
        section = Section::kMolecule;
        moleculeHeaderLine = 0;
      } else if (tag == "ATOM") {
        section = Section::kAtom;
      } else if (tag == "BOND") {
        section = Section::kBond;
      } else {
        section = Section::kNone;
      }
      continue;
    }

    switch (section) {
      case Section::kMolecule:
        if (moleculeHeaderLine == 0) mol.setName(t);
        ++moleculeHeaderLine;
        break;
      case Section::kAtom: {
        // id name x y z type [subst_id subst_name charge]
        std::istringstream ss(t);
        long id;
        std::string name, type;
        double x, y, z;
        if (!(ss >> id >> name >> x >> y >> z >> type)) {
          throw std::runtime_error("readMol2: malformed ATOM record at line " +
                                   std::to_string(lineNo) + ": '" + t + "'");
        }
        const Element e = elementFromSybyl(type);
        double charge = ForceField::standard().defaultCharge(e);
        long substId;
        std::string substName;
        if (ss >> substId >> substName >> charge) {
          // full 9-column form; charge parsed
        }
        mol.addAtom(e, Vec3{x, y, z}, charge);
        break;
      }
      case Section::kBond: {
        // id origin target type
        std::istringstream ss(t);
        long id, a, b;
        std::string type;
        if (!(ss >> id >> a >> b)) {
          throw std::runtime_error("readMol2: malformed BOND record at line " +
                                   std::to_string(lineNo) + ": '" + t + "'");
        }
        if (a < 1 || b < 1 || a > static_cast<long>(mol.atomCount()) ||
            b > static_cast<long>(mol.atomCount())) {
          throw std::runtime_error("readMol2: bond index out of range at line " +
                                   std::to_string(lineNo));
        }
        mol.addBond(static_cast<int>(a - 1), static_cast<int>(b - 1));
        break;
      }
      default:
        break;
    }
  }
  mol.validate();
  return mol;
}

Molecule readMol2File(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readMol2File: cannot open " + path);
  return readMol2(in);
}

void writeMol2(std::ostream& out, const Molecule& mol) {
  out << "@<TRIPOS>MOLECULE\n";
  out << (mol.name().empty() ? "UNNAMED" : mol.name()) << '\n';
  out << mol.atomCount() << ' ' << mol.bondCount() << " 0 0 0\n";
  out << "SMALL\nUSER_CHARGES\n";
  out << "@<TRIPOS>ATOM\n";
  out.precision(6);
  out << std::fixed;
  for (std::size_t i = 0; i < mol.atomCount(); ++i) {
    const Vec3& p = mol.position(i);
    const std::string sym(elementSymbol(mol.element(i)));
    out << (i + 1) << ' ' << sym << (i + 1) << ' ' << p.x << ' ' << p.y << ' ' << p.z << ' '
        << sym << " 1 LIG " << mol.charge(i) << '\n';
  }
  out << "@<TRIPOS>BOND\n";
  std::size_t bondId = 1;
  for (const auto& b : mol.bonds()) {
    out << bondId++ << ' ' << (b.a + 1) << ' ' << (b.b + 1) << " 1\n";
  }
}

void writeMol2File(const std::string& path, const Molecule& mol) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeMol2File: cannot open " + path);
  writeMol2(out, mol);
}

}  // namespace dqndock::chem
