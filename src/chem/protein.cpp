#include "src/chem/protein.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace dqndock::chem {

namespace {

struct AaInfo {
  std::string_view code;
  std::size_t sideAtoms;  ///< simplified heavy side-chain atoms
  int charge;             ///< formal charge at physiological pH
};

constexpr std::array<AaInfo, kAminoAcidCount> kAa{{
    {"ALA", 1, 0},  {"ARG", 7, +1}, {"ASN", 4, 0},  {"ASP", 4, -1}, {"CYS", 2, 0},
    {"GLN", 5, 0},  {"GLU", 5, -1}, {"GLY", 0, 0},  {"HIS", 6, 0},  {"ILE", 4, 0},
    {"LEU", 4, 0},  {"LYS", 5, +1}, {"MET", 4, 0},  {"PHE", 7, 0},  {"PRO", 3, 0},
    {"SER", 2, 0},  {"THR", 3, 0},  {"TRP", 10, 0}, {"TYR", 8, 0},  {"VAL", 3, 0},
}};

/// Element of the k-th simplified side-chain atom for a residue type.
Element sideChainElement(AminoAcid aa, std::size_t k, std::size_t total) {
  const bool last = k + 1 == total;
  switch (aa) {
    case AminoAcid::Ser:
    case AminoAcid::Thr:
    case AminoAcid::Tyr:
      return last ? Element::O : Element::C;
    case AminoAcid::Cys:
    case AminoAcid::Met:
      return last ? Element::S : Element::C;
    case AminoAcid::Asp:
    case AminoAcid::Glu:
      return (k + 2 >= total) ? Element::O : Element::C;  // carboxylate
    case AminoAcid::Asn:
    case AminoAcid::Gln:
      return last ? Element::N : (k + 2 == total ? Element::O : Element::C);
    case AminoAcid::Lys:
    case AminoAcid::Arg:
      return last ? Element::N : Element::C;
    case AminoAcid::His:
    case AminoAcid::Trp:
      return (k % 3 == 2) ? Element::N : Element::C;
    default:
      return Element::C;
  }
}

}  // namespace

std::string_view aminoAcidCode(AminoAcid aa) {
  return kAa[static_cast<std::size_t>(aa)].code;
}

AminoAcid aminoAcidFromCode(std::string_view code) {
  std::string upper;
  for (char c : code) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  for (int i = 0; i < kAminoAcidCount; ++i) {
    if (kAa[static_cast<std::size_t>(i)].code == upper) return static_cast<AminoAcid>(i);
  }
  throw std::invalid_argument("aminoAcidFromCode: unknown residue '" + upper + "'");
}

std::size_t sideChainSize(AminoAcid aa) { return kAa[static_cast<std::size_t>(aa)].sideAtoms; }

int residueCharge(AminoAcid aa) { return kAa[static_cast<std::size_t>(aa)].charge; }

std::vector<AminoAcid> randomSequence(std::size_t length, Rng& rng) {
  std::vector<AminoAcid> seq;
  seq.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    seq.push_back(static_cast<AminoAcid>(rng.uniformInt(kAminoAcidCount)));
  }
  return seq;
}

ProteinChain buildProtein(const ProteinSpec& spec) {
  if (spec.residues == 0) throw std::invalid_argument("buildProtein: residues must be > 0");
  Rng rng(spec.seed);
  ProteinChain chain;
  chain.sequence = randomSequence(spec.residues, rng);
  Molecule& mol = chain.molecule;
  mol.setName("synthetic-protein");

  // --- C-alpha trace: self-avoiding walk biased toward the centroid. ----
  std::vector<Vec3> trace;
  trace.push_back(Vec3{0, 0, 0});
  Vec3 centroid;
  for (std::size_t r = 1; r < spec.residues; ++r) {
    centroid = Vec3{};
    for (const auto& p : trace) centroid += p;
    centroid /= static_cast<double>(trace.size());

    Vec3 next;
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      Vec3 dir = rng.unitVector<Vec3>();
      // Compactness bias: mix in the direction back toward the centroid.
      const Vec3 inward = (centroid - trace.back());
      if (inward.norm() > 1e-9) {
        dir = (dir * (1.0 - spec.compactness) +
               inward.normalized() * spec.compactness)
                  .normalized();
      }
      next = trace.back() + dir * spec.caSpacing;
      placed = true;
      for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        if (distance2(trace[i], next) < 3.0 * 3.0) {  // self-avoidance
          placed = false;
          break;
        }
      }
    }
    trace.push_back(next);  // accept the last attempt even if crowded
  }

  // --- Atoms per residue: N, CA, C, O backbone + simplified side chain. -
  int prevC = -1;
  for (std::size_t r = 0; r < spec.residues; ++r) {
    const AminoAcid aa = chain.sequence[r];
    const Vec3 ca = trace[r];
    const Vec3 toNext = (r + 1 < spec.residues ? trace[r + 1] - ca : rng.unitVector<Vec3>());
    const Vec3 axis = toNext.normalized();
    // A stable perpendicular frame.
    Vec3 perp = axis.cross(Vec3{0, 0, 1});
    if (perp.norm2() < 1e-6) perp = axis.cross(Vec3{0, 1, 0});
    perp = perp.normalized();
    const Vec3 perp2 = axis.cross(perp).normalized();

    const int nIdx = mol.addAtom(Element::N, ca - axis * 1.46, -0.35,
                                 HBondRole::kAcceptor);
    const int caIdx = mol.addAtom(Element::C, ca, 0.05);
    const int cIdx = mol.addAtom(Element::C, ca + axis * 1.52, 0.45);
    const int oIdx = mol.addAtom(Element::O, ca + axis * 1.52 + perp * 1.23, -0.45,
                                 HBondRole::kAcceptor);
    chain.caIndex.push_back(caIdx);
    mol.addBond(nIdx, caIdx);
    mol.addBond(caIdx, cIdx);
    mol.addBond(cIdx, oIdx);
    if (prevC >= 0) mol.addBond(prevC, nIdx);  // peptide bond
    prevC = cIdx;

    // Side chain: short branch growing along -perp2 with jitter.
    const std::size_t side = sideChainSize(aa);
    int host = caIdx;
    for (std::size_t k = 0; k < side; ++k) {
      const Element e = sideChainElement(aa, k, side);
      Vec3 pos = mol.position(static_cast<std::size_t>(host)) - perp2 * 1.5 +
                 Vec3{rng.gaussian(0, 0.2), rng.gaussian(0, 0.2), rng.gaussian(0, 0.2)};
      double q = ForceField::standard().defaultCharge(e) * 0.5;
      HBondRole role = HBondRole::kNone;
      if (e == Element::O || e == Element::N) role = HBondRole::kAcceptor;
      // Formal charge on the terminal side-chain atom.
      if (k + 1 == side && residueCharge(aa) != 0) q = residueCharge(aa) * 0.8;
      const int idx = mol.addAtom(e, pos, q, role);
      mol.addBond(host, idx);
      host = idx;
    }
    // Track residue membership for everything added in this iteration.
    while (chain.residueOfAtom.size() < mol.atomCount()) {
      chain.residueOfAtom.push_back(static_cast<int>(r));
    }
  }

  mol.validate();
  return chain;
}

}  // namespace dqndock::chem
