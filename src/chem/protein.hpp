#pragma once

/// \file protein.hpp
/// Residue-level synthetic protein builder.
///
/// The lattice receptor in synthetic.hpp reproduces the paper's exact
/// atom/bond counts; this module builds *protein-shaped* decoys instead:
/// a self-avoiding C-alpha walk with per-residue backbone (N, CA, C, O)
/// and simplified side chains from 20 amino-acid templates, standard
/// charges on Asp/Glu/Lys/Arg, and donor/acceptor annotations. Used by
/// the file-based docking example and as drop-in receptors for the
/// docking engine when structural realism matters more than exact state
/// dimensions.

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/common/rng.hpp"

namespace dqndock::chem {

enum class AminoAcid : unsigned char {
  Ala, Arg, Asn, Asp, Cys, Gln, Glu, Gly, His, Ile,
  Leu, Lys, Met, Phe, Pro, Ser, Thr, Trp, Tyr, Val,
  kCount
};

constexpr int kAminoAcidCount = static_cast<int>(AminoAcid::kCount);

/// Three-letter code ("ALA", "ARG", ...).
std::string_view aminoAcidCode(AminoAcid aa);

/// Parse a three-letter code (case-insensitive). Throws
/// std::invalid_argument on unknown codes.
AminoAcid aminoAcidFromCode(std::string_view code);

/// Heavy side-chain atom count of the simplified template (0 for Gly).
std::size_t sideChainSize(AminoAcid aa);

/// Net formal charge of the residue at physiological pH (-1, 0, +1).
int residueCharge(AminoAcid aa);

struct ProteinSpec {
  std::size_t residues = 120;
  std::uint64_t seed = 7;
  /// Bias of the C-alpha walk back toward the centroid; larger values
  /// give more globular (compact) folds.
  double compactness = 0.35;
  /// Target C-alpha spacing, Angstrom (3.8 in real proteins).
  double caSpacing = 3.8;
};

struct ProteinChain {
  Molecule molecule;
  std::vector<AminoAcid> sequence;
  std::vector<int> residueOfAtom;   ///< residue index per atom
  std::vector<int> caIndex;         ///< atom index of each residue's C-alpha
};

/// Build a folded synthetic protein. Deterministic in spec.seed.
/// Backbone connectivity (N-CA-C(=O), peptide C->N links) and side-chain
/// bonds are present; validate() holds.
ProteinChain buildProtein(const ProteinSpec& spec);

/// Random sequence helper (uniform over the 20 amino acids).
std::vector<AminoAcid> randomSequence(std::size_t length, Rng& rng);

}  // namespace dqndock::chem
