#include "src/chem/smiles.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>
#include <stack>
#include <stdexcept>
#include <vector>

#include "src/chem/topology.hpp"
#include "src/common/rng.hpp"

namespace dqndock::chem {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("SMILES parse error at position " + std::to_string(pos) + ": " + what);
}

struct ParsedAtom {
  Element element = Element::Unknown;
  int formalCharge = 0;
  int explicitH = 0;
};

/// Parse a bracket atom body like "NH3+" or "O-" (without the brackets).
ParsedAtom parseBracket(std::string_view body, std::size_t pos) {
  ParsedAtom atom;
  std::size_t i = 0;
  // Optional isotope digits (ignored).
  while (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) ++i;
  if (i >= body.size()) fail(pos, "empty bracket atom");
  // Element symbol: one upper + optional lower.
  std::string symbol(1, body[i]);
  ++i;
  if (i < body.size() && std::islower(static_cast<unsigned char>(body[i]))) {
    // Try two-letter symbol first; fall back to one letter (aromatic 'c').
    const std::string two = symbol + std::string(1, body[i]);
    if (elementFromSymbol(two) != Element::Unknown) {
      symbol = two;
      ++i;
    }
  }
  atom.element = elementFromSymbol(symbol);
  if (atom.element == Element::Unknown) fail(pos, "unknown element '" + symbol + "'");
  // Hydrogens: H or Hn.
  if (i < body.size() && body[i] == 'H') {
    ++i;
    atom.explicitH = 1;
    if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
      atom.explicitH = body[i] - '0';
      ++i;
    }
  }
  // Charge: +, -, ++, +2, ...
  while (i < body.size() && (body[i] == '+' || body[i] == '-')) {
    const int sign = body[i] == '+' ? 1 : -1;
    ++i;
    if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
      atom.formalCharge += sign * (body[i] - '0');
      ++i;
    } else {
      atom.formalCharge += sign;
    }
  }
  if (i != body.size()) fail(pos, "trailing characters in bracket atom");
  return atom;
}

/// Deterministic self-avoiding placement of a new atom bonded to `host`.
Vec3 placeAtom(const Molecule& mol, int host, double bondLen, Rng& rng) {
  const Vec3 base = host >= 0 ? mol.position(static_cast<std::size_t>(host)) : Vec3{};
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Vec3 candidate = base + rng.unitVector<Vec3>() * bondLen;
    bool clear = true;
    for (std::size_t i = 0; i < mol.atomCount(); ++i) {
      if (static_cast<int>(i) == host) continue;
      if (distance2(mol.position(i), candidate) < 1.1 * 1.1) {
        clear = false;
        break;
      }
    }
    if (clear) return candidate;
  }
  return base + rng.unitVector<Vec3>() * bondLen;  // crowded fallback
}

}  // namespace

Molecule moleculeFromSmiles(std::string_view smiles, std::uint64_t seed) {
  Molecule mol(std::string(smiles.begin(), smiles.end()));
  Rng rng(seed);
  const double bondLen = 1.5;

  int previous = -1;                  // atom the next atom bonds to
  std::stack<int> branchStack;
  std::map<int, int> ringOpenings;    // ring id -> atom index

  auto addAtomBonded = [&](Element e, double charge, HBondRole role) {
    const Vec3 pos = placeAtom(mol, previous, bondLen, rng);
    const int idx = mol.addAtom(e, pos, charge, role);
    if (previous >= 0) mol.addBond(previous, idx);
    previous = idx;
    return idx;
  };

  auto roleFor = [](Element e, int formalCharge) {
    if (formalCharge < 0) return HBondRole::kAcceptor;
    if (e == Element::O || e == Element::N) return HBondRole::kAcceptor;
    return HBondRole::kNone;
  };

  std::size_t i = 0;
  while (i < smiles.size()) {
    const char c = smiles[i];
    if (c == '-' || c == '=' || c == '#' || c == ':') {
      ++i;  // bond orders collapse to connectivity for the non-bonded model
      continue;
    }
    if (c == '(') {
      if (previous < 0) fail(i, "branch before any atom");
      branchStack.push(previous);
      ++i;
      continue;
    }
    if (c == ')') {
      if (branchStack.empty()) fail(i, "unmatched ')'");
      previous = branchStack.top();
      branchStack.pop();
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '%') {
      int ring = 0;
      if (c == '%') {
        if (i + 2 >= smiles.size() || !std::isdigit(static_cast<unsigned char>(smiles[i + 1])) ||
            !std::isdigit(static_cast<unsigned char>(smiles[i + 2]))) {
          fail(i, "bad %nn ring closure");
        }
        ring = (smiles[i + 1] - '0') * 10 + (smiles[i + 2] - '0');
        i += 3;
      } else {
        ring = c - '0';
        ++i;
      }
      if (previous < 0) fail(i, "ring closure before any atom");
      const auto it = ringOpenings.find(ring);
      if (it == ringOpenings.end()) {
        ringOpenings[ring] = previous;
      } else {
        if (it->second == previous) fail(i, "self ring closure");
        mol.addBond(it->second, previous);
        ringOpenings.erase(it);
      }
      continue;
    }
    if (c == '[') {
      const auto close = smiles.find(']', i);
      if (close == std::string_view::npos) fail(i, "unterminated bracket atom");
      const ParsedAtom atom = parseBracket(smiles.substr(i + 1, close - i - 1), i);
      const double charge = atom.formalCharge != 0
                                ? 0.8 * atom.formalCharge
                                : ForceField::standard().defaultCharge(atom.element);
      const int heavy = addAtomBonded(atom.element, charge, roleFor(atom.element, atom.formalCharge));
      // Explicit hydrogens become real atoms (donors on charged N/O).
      for (int h = 0; h < atom.explicitH; ++h) {
        const Vec3 pos = placeAtom(mol, heavy, 1.0, rng);
        const HBondRole role =
            atom.formalCharge > 0 ? HBondRole::kDonorHydrogen : HBondRole::kNone;
        const int hIdx = mol.addAtom(Element::H, pos, 0.25, role);
        mol.addBond(heavy, hIdx);
      }
      previous = heavy;
      i = close + 1;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      // Organic subset: try two-letter symbols (Cl, Br) then one letter;
      // lowercase aromatic forms map to their elements.
      Element e = Element::Unknown;
      if (i + 1 < smiles.size() && std::islower(static_cast<unsigned char>(smiles[i + 1])) &&
          std::isupper(static_cast<unsigned char>(c))) {
        e = elementFromSymbol(smiles.substr(i, 2));
        if (e != Element::Unknown) i += 2;
      }
      if (e == Element::Unknown) {
        e = elementFromSymbol(smiles.substr(i, 1));
        if (e == Element::Unknown) fail(i, std::string("unknown atom '") + c + "'");
        ++i;
      }
      addAtomBonded(e, ForceField::standard().defaultCharge(e), roleFor(e, 0));
      continue;
    }
    fail(i, std::string("unexpected character '") + c + "'");
  }
  if (!branchStack.empty()) fail(smiles.size(), "unterminated branch");
  if (!ringOpenings.empty()) fail(smiles.size(), "unclosed ring bond");
  if (mol.empty()) fail(0, "no atoms");
  mol.validate();
  return mol;
}

std::string smilesFromMolecule(const Molecule& mol) {
  if (mol.empty()) return "";
  Topology topo(mol);
  // Ring bonds = bonds not used by the DFS spanning tree; assign ids.
  std::vector<char> visited(mol.atomCount(), 0);
  std::map<std::pair<int, int>, int> ringBonds;  // canonical pair -> ring id

  // Pre-pass: find non-tree edges via DFS.
  {
    std::vector<char> seen(mol.atomCount(), 0);
    std::vector<std::pair<int, int>> treeEdges;
    std::stack<int> dfs;
    dfs.push(0);
    seen[0] = 1;
    std::vector<int> parent(mol.atomCount(), -1);
    while (!dfs.empty()) {
      const int u = dfs.top();
      dfs.pop();
      for (int v : topo.neighbors(u)) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          parent[static_cast<std::size_t>(v)] = u;
          dfs.push(v);
        }
      }
    }
    int nextRing = 1;
    for (const auto& b : mol.bonds()) {
      const bool isTreeEdge = parent[static_cast<std::size_t>(b.a)] == b.b ||
                              parent[static_cast<std::size_t>(b.b)] == b.a;
      if (!isTreeEdge) {
        ringBonds[{std::min(b.a, b.b), std::max(b.a, b.b)}] = nextRing++;
      }
    }
  }

  std::ostringstream out;
  // Recursive DFS emission.
  std::function<void(int, int)> emit = [&](int u, int from) {
    visited[static_cast<std::size_t>(u)] = 1;
    const Element e = mol.element(u);
    const double q = mol.charge(u);
    if (q >= 0.75 || q <= -0.75) {
      out << '[' << elementSymbol(e) << (q > 0 ? '+' : '-') << ']';
    } else {
      out << elementSymbol(e);
    }
    // Ring-closure digits on this atom.
    for (const auto& [pair, id] : ringBonds) {
      if (pair.first == u || pair.second == u) out << id;
    }
    // Children (skip the atom we came from and ring-closure partners).
    std::vector<int> children;
    for (int v : topo.neighbors(u)) {
      if (v == from || visited[static_cast<std::size_t>(v)]) continue;
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      if (ringBonds.count(key)) continue;
      children.push_back(v);
    }
    for (std::size_t k = 0; k < children.size(); ++k) {
      const bool last = k + 1 == children.size();
      if (!last) out << '(';
      emit(children[k], u);
      if (!last) out << ')';
    }
  };
  emit(0, -1);
  return out.str();
}

}  // namespace dqndock::chem
