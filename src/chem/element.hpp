#pragma once

/// \file element.hpp
/// Periodic-table subset covering the atoms that occur in protein
/// receptors and drug-like ligands (the molecules METADOCK docks).

#include <string>
#include <string_view>

namespace dqndock::chem {

enum class Element : unsigned char {
  H = 0,
  C,
  N,
  O,
  S,
  P,
  F,
  Cl,
  Br,
  I,
  Unknown,
  kCount  // sentinel
};

constexpr int kElementCount = static_cast<int>(Element::kCount);

/// Chemical symbol ("H", "C", ...). Unknown maps to "X".
std::string_view elementSymbol(Element e);

/// Parse a symbol (case-insensitive, surrounding spaces allowed).
/// Unrecognized symbols yield Element::Unknown.
Element elementFromSymbol(std::string_view symbol);

/// Average atomic mass in Daltons.
double elementMass(Element e);

/// Covalent radius in Angstrom (used for bond perception).
double covalentRadius(Element e);

}  // namespace dqndock::chem
