/// \file scoring_kernel_generic.cpp
/// Portable tier of the Eq. 1 sweep kernels. Compiled with the baseline
/// target flags only (-O3 -fno-math-errno; never -mavx512f), so the
/// binary runs on any x86-64 (or non-x86) host; GCC auto-vectorises the
/// fixed-lane loops for whatever the *build* baseline allows.

#include "src/metadock/scoring_kernel_impl.hpp"
#include "src/metadock/scoring_kernels.hpp"

namespace dqndock::metadock::detail {

namespace {

void sweepRangesGeneric(const double* X, const double* Y, const double* Z, const double* Q,
                        const double* EPS, const double* SG2, const std::uint32_t* ranges,
                        std::size_t numRanges, const double* lx, const double* ly,
                        const double* lz, std::size_t lanes, double cut2, double* elecAcc,
                        double* vdwAcc) {
  sweepRangesGenericImpl(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, lanes, cut2,
                         elecAcc, vdwAcc);
}

void sweepAtomGeneric(const double* X, const double* Y, const double* Z, const double* Q,
                      const double* EPS, const double* SG2, const std::uint32_t* ranges,
                      std::size_t numRanges, double lx, double ly, double lz, double cut2,
                      double* elecOut, double* vdwOut) {
  sweepAtomImpl(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, cut2, elecOut, vdwOut);
}

}  // namespace

const ScoringKernelOps kGenericKernelOps = {KernelTier::kGeneric, &sweepRangesGeneric,
                                            &sweepAtomGeneric};

}  // namespace dqndock::metadock::detail
