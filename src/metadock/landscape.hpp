#pragma once

/// \file landscape.hpp
/// Scoring-landscape profiling: sample the docking score along a line or
/// over a plane through the receptor. Regenerates the approach profile
/// that motivates the paper's episode rules (flat far field, positive
/// pocket basin, catastrophic clash core) and provides CSV series for
/// plotting.

#include <string>
#include <vector>

#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

struct LandscapeSample {
  double t = 0.0;   ///< line parameter (or grid u for planes)
  double u = 0.0;   ///< second plane parameter (0 for lines)
  Vec3 position;    ///< ligand centroid placement
  double score = 0.0;
};

/// Score of the ligand translated (in its reference orientation) so its
/// centroid traverses origin + t * direction for t in [t0, t1] with
/// `samples` points.
std::vector<LandscapeSample> profileLine(const ScoringFunction& scoring, const Vec3& origin,
                                         const Vec3& direction, double t0, double t1,
                                         std::size_t samples);

/// Score over a plane patch spanned by (axisU, axisV) around `center`,
/// samplesU x samplesV grid with half-extents extentU/extentV.
std::vector<LandscapeSample> profilePlane(const ScoringFunction& scoring, const Vec3& center,
                                          const Vec3& axisU, const Vec3& axisV, double extentU,
                                          double extentV, std::size_t samplesU,
                                          std::size_t samplesV);

/// Write samples as CSV (t, u, x, y, z, score).
void writeLandscapeCsv(const std::string& path, const std::vector<LandscapeSample>& samples);

}  // namespace dqndock::metadock
