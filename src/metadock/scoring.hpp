#pragma once

/// \file scoring.hpp
/// METADOCK's three-term scoring function (Equation 1 of the paper):
///
///   E = sum_ij k q_i q_j / r_ij                         (electrostatics)
///     + sum_ij 4 eps_ij [ (s/r)^12 - (s/r)^6 ]          (Lennard-Jones)
///     + sum_ij cos(th) [ C/r^12 - D/r^10 ]
///            + sin(th) 4 eps_ij [ (s/r)^12 - (s/r)^6 ]  (hydrogen bond)
///
/// The docking *score* reported to callers is the negated energy, so
/// higher is better and steric clashes drive the score to huge negative
/// values — matching the paper's description of the score range
/// ("from big negative numbers (e.g. -4.5e+21) to 500 at most").
///
/// Execution paths: scalar brute force (Algorithm 1 of the paper),
/// cutoff without grid, cutoff + neighbour-grid pruned, and thread-pool
/// parallel (the CPU analogue of METADOCK's GPU kernels). By default all
/// of them run the *packed* data-oriented kernel: pass 1 is a fused
/// electrostatics+Lennard-Jones sweep over the receptor's cell-sorted
/// SoA arrays with precomputed per-ligand-element pair-parameter rows
/// (branch-free, auto-vectorisable); pass 2 scores the sparse
/// hydrogen-bond term over the receptor's packed donor/acceptor site
/// lists. `ScoringOptions::packed = false` selects the original scalar
/// AoS path for A/B testing; both paths agree to ~1e-9 relative.
///
/// Threaded evaluation sums ordered per-ligand-atom partials, so scores
/// are bit-identical across thread counts (and to the serial path).
///
/// The packed sweeps (per-pose and pose-batched) are runtime-dispatched:
/// per-ISA translation units (portable C++ and AVX-512F) are compiled
/// with explicit per-file flags, and a CPUID-probed function-pointer
/// table is installed once at construction, so a portable Release binary
/// still runs the AVX-512 batched sweep on capable hosts.
/// `DQNDOCK_FORCE_KERNEL=generic|avx512` pins the tier for testing and
/// benchmarking (see scoring_kernels.hpp). The per-pose sweep is
/// bit-identical across tiers; the batched AVX-512 sweep agrees with the
/// generic one to ~1e-9 relative and each tier is bit-deterministic.
///
/// Pose-batched path (`energyBatch`/`scoreBatch`): B poses of the same
/// ligand are transformed into batch-major SoA position lanes and scored
/// in one receptor sweep — per ligand atom, the union of the poses' cell
/// ranges is swept once, each receptor atom's parameters are loaded once
/// and reused across all B pose lanes with a branch-free cutoff mask, and
/// subcells farther than the cutoff from the lane bounding box are
/// skipped entirely (the CPU analogue of METADOCK scoring many poses per
/// surface spot per GPU kernel launch). Per-atom lane bounding boxes that
/// diverge beyond a cell-locality heuristic are bisected into tighter
/// lane groups and reswept. Batched scores are deterministic: bit-identical
/// for any batch split and thread count, and within ~1e-9 relative of
/// per-pose packed scoring (the pair terms are identical; only the lane
/// accumulation order differs).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/chem/forcefield.hpp"
#include "src/common/thread_pool.hpp"
#include "src/metadock/ligand_model.hpp"
#include "src/metadock/receptor_model.hpp"
#include "src/metadock/scoring_kernels.hpp"

namespace dqndock::metadock {

/// Distances are clamped to this floor before any 1/r term; keeps the
/// energy finite (though astronomically large) for coincident atoms.
constexpr double kMinPairDistance = 0.05;

/// Per-term energy decomposition, kcal/mol.
struct ScoreTerms {
  double electrostatic = 0.0;
  double vdw = 0.0;
  double hbond = 0.0;

  double total() const { return electrostatic + vdw + hbond; }

  ScoreTerms& operator+=(const ScoreTerms& o) {
    electrostatic += o.electrostatic;
    vdw += o.vdw;
    hbond += o.hbond;
    return *this;
  }
};

/// Pairwise terms, exposed for unit testing and reuse.
double electrostaticEnergy(double qi, double qj, double r);
double lennardJonesEnergy(double epsilon, double sigma, double r);
/// 12-10 hydrogen-bond well modulated by the donor geometry angle theta.
double hbondEnergy(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                   double cosTheta);

struct ScoringOptions {
  /// Interaction cutoff in Angstrom; 0 disables the cutoff (full O(n*m)
  /// sum, Algorithm 1 of the paper).
  double cutoff = 12.0;
  /// Prune receptor atoms through the neighbour grid (requires cutoff > 0
  /// and a ReceptorModel built with a grid).
  bool useGrid = true;
  /// Data-oriented SoA kernel (default). false = original scalar AoS
  /// fallback, kept for A/B testing and golden-equivalence checks.
  bool packed = true;
  /// Thread pool for parallel evaluation; nullptr = single-threaded.
  ThreadPool* pool = nullptr;
};

/// Scores ligand conformations against one compiled receptor.
class ScoringFunction {
 public:
  ScoringFunction(const ReceptorModel& receptor, const LigandModel& ligand,
                  ScoringOptions options = {});

  /// Interaction energy of the ligand at `ligandPositions` (size must be
  /// ligand.atomCount()).
  ScoreTerms energy(std::span<const Vec3> ligandPositions) const;

  /// Docking score := -energy.total(); higher is better.
  double score(std::span<const Vec3> ligandPositions) const;

  /// Convenience: apply `pose` to the ligand model, then score. The
  /// scratch buffer avoids per-call allocation in hot loops.
  double scorePose(const Pose& pose, std::vector<Vec3>& scratch) const;
  double scorePose(const Pose& pose) const;

  /// Poses per batched-kernel tile; larger batches are processed in tiles
  /// of this many lanes (per-pose results do not depend on the tiling).
  static constexpr std::size_t kMaxBatchLanes = 32;
  /// Cell-locality heuristic: when the grid-cell window covering the
  /// cutoff neighbourhood of a lane group's bounding box exceeds this
  /// many cells (27 = one pose's neighbourhood), the batched kernel
  /// bisects the lane group and retries each half with its tighter
  /// bounding box (a single lane's window is at most 27 cells, so the
  /// recursion always bottoms out in a union sweep).
  static constexpr std::size_t kMaxUnionWindowCells = 64;

  /// Reusable scratch for the pose-batched kernel (one per worker).
  /// Contents are an implementation detail; callers only keep it alive
  /// between calls so the lane buffers stay warm.
  struct BatchScratch {
    std::vector<Vec3> pose;         ///< applyPose temp (also scalar-path scratch)
    std::vector<double> lx, ly, lz; ///< batch-major lanes [ligandAtom * lanes + pose]
    std::vector<ScoreTerms> terms;  ///< per-pose totals for scoreBatch
    std::vector<std::uint32_t> ranges;  ///< packed [first, end) pairs per sweep
    std::vector<double> slab;       ///< per-subrow slab distances (geometry phase)
  };

  /// Pose-batched energies: `out[i]` receives the energy of `poses[i]`,
  /// equal to energy(applyPose(poses[i])) within ~1e-9 relative (the
  /// scalar fallback path is reused verbatim when options().packed is
  /// false). out.size() must equal poses.size().
  void energyBatch(std::span<const Pose> poses, BatchScratch& scratch,
                   std::span<ScoreTerms> out) const;

  /// Pose-batched docking scores (score := -energy.total()).
  void scoreBatch(std::span<const Pose> poses, BatchScratch& scratch,
                  std::span<double> out) const;

  const ReceptorModel& receptor() const { return receptor_; }
  const LigandModel& ligand() const { return ligand_; }
  const ScoringOptions& options() const { return options_; }

  /// ISA tier of the sweep kernels this instance dispatches to — probed
  /// from CPUID at construction (DQNDOCK_FORCE_KERNEL overrides; see
  /// scoring_kernels.hpp).
  KernelTier kernelTier() const { return kernel_->tier; }

 private:
  /// Full three-term energy of one ligand atom against the receptor,
  /// dispatched to the packed or scalar kernel. The unit the threaded
  /// reduction sums in order.
  ScoreTerms atomEnergy(std::size_t ligandAtom, const Vec3& ligandPos,
                        std::span<const Vec3> allLigandPositions) const;
  ScoreTerms packedAtomEnergy(std::size_t ligandAtom, const Vec3& ligandPos,
                              std::span<const Vec3> allLigandPositions) const;
  ScoreTerms scalarAtomEnergy(std::size_t ligandAtom, const Vec3& ligandPos,
                              std::span<const Vec3> allLigandPositions) const;
  ScoreTerms pairEnergy(std::size_t receptorAtom, std::size_t ligandAtom, const Vec3& ligandPos,
                        std::span<const Vec3> allLigandPositions) const;

  /// Sparse H-bond pass for one (ligand atom, pose): identical operations
  /// and site order for the per-pose and batched kernels. `anchorPos` is
  /// the donor hydrogen's anchor heavy-atom position (nullptr if none).
  double packedHBondEnergy(std::size_t ligandAtom, const Vec3& ligandPos,
                           const Vec3* anchorPos) const;

  /// One tile (<= kMaxBatchLanes poses) of the batched kernel.
  void energyBatchTile(std::span<const Pose> poses, BatchScratch& scratch,
                       std::span<ScoreTerms> out) const;

  const ReceptorModel& receptor_;
  const LigandModel& ligand_;
  ScoringOptions options_;
  /// Runtime-dispatched sweep kernels (per-ISA TUs; chosen once here).
  const detail::ScoringKernelOps* kernel_;
  /// Precombined Lorentz-Berthelot pair parameters, indexed
  /// [receptorElement][ligandElement] (scalar path + H-bond pass).
  std::array<std::array<chem::LjParams, chem::kElementCount>, chem::kElementCount> ljTable_{};
  chem::HBondParams hbond_{};

  /// Packed-kernel tables: one epsilon/sigma^2 row over the cell-sorted
  /// receptor atoms per ligand element actually present in the scenario.
  std::vector<chem::PairRowTable> pairRows_;
  std::vector<int> atomRow_;        ///< ligand atom -> index into pairRows_
  std::vector<double> ligCharges_;  ///< ligand partial charges, hoisted
  std::vector<chem::HBondRole> ligRoles_;
  std::vector<chem::Element> ligElems_;
};

}  // namespace dqndock::metadock
