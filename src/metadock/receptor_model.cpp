#include "src/metadock/receptor_model.hpp"

#include "src/chem/topology.hpp"

namespace dqndock::metadock {

ReceptorModel::ReceptorModel(const chem::Molecule& receptor, double gridCellSize)
    : molecule_(receptor) {
  molecule_.validate();
  positions_.assign(molecule_.positions().begin(), molecule_.positions().end());
  charges_.assign(molecule_.charges().begin(), molecule_.charges().end());
  elements_.assign(molecule_.elements().begin(), molecule_.elements().end());
  roles_.assign(molecule_.hbondRoles().begin(), molecule_.hbondRoles().end());
  centerOfMass_ = molecule_.centerOfMass();

  donorDirs_.assign(atomCount(), Vec3{});
  chem::Topology topo(molecule_);
  const auto anchors = topo.hydrogenAnchors(molecule_);
  for (std::size_t i = 0; i < atomCount(); ++i) {
    if (roles_[i] != chem::HBondRole::kDonorHydrogen) continue;
    const int anchor = anchors[i];
    if (anchor < 0) continue;
    donorDirs_[i] = (positions_[i] - positions_[static_cast<std::size_t>(anchor)]).normalized();
  }

  if (gridCellSize > 0.0) {
    grid_ = std::make_unique<NeighborGrid>(positions_, gridCellSize);
  }
}

}  // namespace dqndock::metadock
