#include "src/metadock/receptor_model.hpp"

#include <numeric>

#include "src/chem/topology.hpp"

namespace dqndock::metadock {

ReceptorModel::ReceptorModel(const chem::Molecule& receptor, double gridCellSize)
    : molecule_(receptor) {
  molecule_.validate();
  positions_.assign(molecule_.positions().begin(), molecule_.positions().end());
  charges_.assign(molecule_.charges().begin(), molecule_.charges().end());
  elements_.assign(molecule_.elements().begin(), molecule_.elements().end());
  roles_.assign(molecule_.hbondRoles().begin(), molecule_.hbondRoles().end());
  centerOfMass_ = molecule_.centerOfMass();

  donorDirs_.assign(atomCount(), Vec3{});
  chem::Topology topo(molecule_);
  const auto anchors = topo.hydrogenAnchors(molecule_);
  for (std::size_t i = 0; i < atomCount(); ++i) {
    if (roles_[i] != chem::HBondRole::kDonorHydrogen) continue;
    const int anchor = anchors[i];
    if (anchor < 0) continue;
    donorDirs_[i] = (positions_[i] - positions_[static_cast<std::size_t>(anchor)]).normalized();
  }

  if (gridCellSize > 0.0) {
    // Subdivide cells kGridSubdiv x per axis: the pose-batched kernel
    // prunes whole subcells against the cutoff sphere around a pose
    // batch, which the coarse (cell edge >= cutoff) cells are too big
    // for. Cell-level queries are unaffected.
    grid_ = std::make_unique<NeighborGrid>(positions_, gridCellSize, kGridSubdiv);
    packedOrder_ = grid_->cellOrder();
  } else {
    packedOrder_.resize(atomCount());
    std::iota(packedOrder_.begin(), packedOrder_.end(), 0u);
  }

  // Cell-packed SoA copies: the scoring kernel walks grid ranges as
  // contiguous slices of these arrays.
  const std::size_t n = atomCount();
  packedX_.resize(n);
  packedY_.resize(n);
  packedZ_.resize(n);
  packedCharges_.resize(n);
  packedElements_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = packedOrder_[i];
    packedX_[i] = positions_[src].x;
    packedY_[i] = positions_[src].y;
    packedZ_[i] = positions_[src].z;
    packedCharges_[i] = charges_[src];
    packedElements_[i] = elements_[src];
  }

  // Sparse H-bond site lists (packed order, so the second scoring pass
  // visits them in a deterministic order independent of thread count).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = packedOrder_[i];
    switch (roles_[src]) {
      case chem::HBondRole::kDonorHydrogen:
        donorSites_.push_back({positions_[src], donorDirs_[src], elements_[src]});
        break;
      case chem::HBondRole::kAcceptor:
        acceptorSites_.push_back({positions_[src], Vec3{}, elements_[src]});
        break;
      case chem::HBondRole::kNone:
        break;
    }
  }
}

}  // namespace dqndock::metadock
