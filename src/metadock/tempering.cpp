#include "src/metadock/tempering.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

ParallelTempering::ParallelTempering(PoseEvaluator& evaluator, TemperingParams params)
    : evaluator_(evaluator), params_(params) {
  if (params_.replicas < 2) throw std::invalid_argument("ParallelTempering: need >= 2 replicas");
  if (params_.temperatureMin <= 0 || params_.temperatureMax <= params_.temperatureMin) {
    throw std::invalid_argument("ParallelTempering: bad temperature ladder");
  }
  torsionCount_ = evaluator_.scoring().ligand().torsionCount();
  // Geometric ladder from cold to hot.
  ladder_.resize(params_.replicas);
  const double ratio = std::pow(params_.temperatureMax / params_.temperatureMin,
                                1.0 / static_cast<double>(params_.replicas - 1));
  double t = params_.temperatureMin;
  for (auto& temperature : ladder_) {
    temperature = t;
    t *= ratio;
  }
}

TemperingResult ParallelTempering::run(Rng& rng) {
  return runFrom(Pose(torsionCount_), rng);
}

TemperingResult ParallelTempering::runFrom(const Pose& start, Rng& rng) {
  evaluator_.resetEvaluationCount();
  TemperingResult result;

  const ReceptorModel& receptor = evaluator_.scoring().receptor();
  double radius = params_.searchRadius;
  if (radius <= 0.0) {
    const auto [lo, hi] = receptor.molecule().boundingBox();
    radius = 0.5 * (hi - lo).norm() + 10.0;
  }

  // Independent RNG streams so per-replica work could be pooled without
  // changing results (swaps happen on the caller thread).
  std::vector<Rng> streams;
  for (std::size_t r = 0; r < params_.replicas; ++r) streams.push_back(rng.split());

  // Initialise replicas: replica 0 at the start pose, the rest random.
  std::vector<Candidate> replicas(params_.replicas);
  {
    std::vector<Pose> poses;
    poses.push_back(start);
    for (std::size_t r = 1; r < params_.replicas; ++r) {
      poses.push_back(randomPose(receptor.centerOfMass(), radius, torsionCount_, streams[r]));
    }
    const auto scores = evaluator_.evaluateBatch(poses);
    for (std::size_t r = 0; r < params_.replicas; ++r) {
      replicas[r] = {std::move(poses[r]), scores[r]};
      if (replicas[r].score > result.best.score) result.best = replicas[r];
    }
  }

  const double rotRad = params_.mutationRotationDeg * M_PI / 180.0;
  const double torRad = params_.mutationTorsionDeg * M_PI / 180.0;

  while (evaluator_.evaluationCount() < params_.maxEvaluations) {
    // --- MC sweep per replica at its own temperature. ------------------
    for (std::size_t step = 0; step < params_.stepsPerRound; ++step) {
      std::vector<Pose> proposals;
      proposals.reserve(params_.replicas);
      for (std::size_t r = 0; r < params_.replicas; ++r) {
        proposals.push_back(perturbPose(replicas[r].pose, params_.mutationTranslation, rotRad,
                                        torRad, streams[r]));
      }
      const auto scores = evaluator_.evaluateBatch(proposals);
      for (std::size_t r = 0; r < params_.replicas; ++r) {
        const double delta = scores[r] - replicas[r].score;
        if (delta >= 0.0 || streams[r].uniform() < std::exp(delta / ladder_[r])) {
          replicas[r].pose = std::move(proposals[r]);
          replicas[r].score = scores[r];
          if (replicas[r].score > result.best.score) result.best = replicas[r];
        }
      }
    }

    // --- Replica-exchange sweep between adjacent temperatures. ----------
    for (std::size_t r = 0; r + 1 < params_.replicas; ++r) {
      ++result.swapsProposed;
      // Score = -energy; the exchange criterion uses energies E = -score:
      //   accept with min(1, exp[(1/Ti - 1/Tj)(Ei - Ej)]).
      const double ei = -replicas[r].score;
      const double ej = -replicas[r + 1].score;
      const double arg = (1.0 / ladder_[r] - 1.0 / ladder_[r + 1]) * (ei - ej);
      if (arg >= 0.0 || rng.uniform() < std::exp(arg)) {
        std::swap(replicas[r], replicas[r + 1]);
        ++result.swapsAccepted;
      }
    }

    result.history.push_back(result.best.score);
    ++result.rounds;
  }
  result.evaluations = evaluator_.evaluationCount();
  return result;
}

}  // namespace dqndock::metadock
