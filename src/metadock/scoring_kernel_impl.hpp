#pragma once

/// \file scoring_kernel_impl.hpp
/// Shared bodies of the Eq. 1 sweep kernels, included by each per-ISA
/// translation unit (`scoring_kernel_generic.cpp`,
/// `scoring_kernel_avx512.cpp`). Every tier compiles the *same* per-lane
/// arithmetic from this header — only the compiler flags (and, for the
/// AVX-512 batched sweep, an intrinsic override in its own TU) differ —
/// which is what makes the per-pose sweep bit-identical across tiers:
/// the operations are plain IEEE add/mul/div/sqrt with FP contraction
/// off, so instruction selection cannot change results.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/metadock/scoring.hpp"

namespace dqndock::metadock::detail {

/// Fused electrostatics + Lennard-Jones over the packed receptor ranges
/// for `lanes` pose lanes of one ligand atom: each receptor atom's
/// parameters are loaded once and applied to every lane, with
/// out-of-cutoff lanes contributing an exact 0.0. Accumulation is
/// straight packed-index order per lane, so a pose's partial sum does not
/// depend on which other poses share the tile (masked lanes add an exact
/// +-0.0, which never perturbs an accumulator that starts at +0.0).
/// kLanes > 0 pins the lane count at compile time: the lane loop unrolls
/// fully, lane positions and accumulators stay in registers across the
/// whole range list (the __restrict contracts make the hoist legal), and
/// only the six per-atom scalars are touched per receptor atom. kLanes ==
/// 0 is the runtime-count fallback with the *identical* per-lane
/// arithmetic, so a lane's result does not depend on which variant (or
/// group split) computed it. `ranges` holds numRanges packed
/// [first, end) index pairs into the receptor arrays, swept in order.
template <int kLanes>
inline void sweepRangesImpl(const double* __restrict X, const double* __restrict Y,
                            const double* __restrict Z, const double* __restrict Q,
                            const double* __restrict EPS, const double* __restrict SG2,
                            const std::uint32_t* __restrict ranges, std::size_t numRanges,
                            const double* __restrict lx, const double* __restrict ly,
                            const double* __restrict lz, std::size_t lanes, double cut2,
                            double* __restrict elecAcc, double* __restrict vdwAcc) {
  constexpr double kMinDist2 = kMinPairDistance * kMinPairDistance;
  const std::size_t L = kLanes > 0 ? static_cast<std::size_t>(kLanes) : lanes;
  for (std::size_t k = 0; k < numRanges; ++k) {
    const std::size_t first = ranges[2 * k];
    const std::size_t end = ranges[2 * k + 1];
    for (std::size_t j = first; j < end; ++j) {
      const double xj = X[j], yj = Y[j], zj = Z[j];
      const double qj = Q[j], ej = EPS[j], gj = SG2[j];
      for (std::size_t b = 0; b < L; ++b) {
        const double dx = xj - lx[b];
        const double dy = yj - ly[b];
        const double dz = zj - lz[b];
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double in = r2 <= cut2 ? 1.0 : 0.0;
        const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
        const double rinv = 1.0 / std::sqrt(r2c);
        const double s2 = gj * (rinv * rinv);
        const double s6 = s2 * s2 * s2;
        elecAcc[b] += in * (qj * rinv);
        vdwAcc[b] += in * (ej * (s6 * s6 - s6));
      }
    }
  }
}

/// Dispatches to the compile-time-lane variants for the group sizes the
/// tile/bisection machinery actually produces (full tiles halve: 32, 16,
/// 8); everything else takes the runtime loop. All variants share the
/// per-lane arithmetic, so results are bit-independent of the dispatch.
inline void sweepRangesGenericImpl(const double* X, const double* Y, const double* Z,
                                   const double* Q, const double* EPS, const double* SG2,
                                   const std::uint32_t* ranges, std::size_t numRanges,
                                   const double* lx, const double* ly, const double* lz,
                                   std::size_t lanes, double cut2, double* elecAcc,
                                   double* vdwAcc) {
  switch (lanes) {
    case 32:
      sweepRangesImpl<32>(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, lanes, cut2,
                          elecAcc, vdwAcc);
      break;
    case 16:
      sweepRangesImpl<16>(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, lanes, cut2,
                          elecAcc, vdwAcc);
      break;
    case 8:
      sweepRangesImpl<8>(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, lanes, cut2,
                         elecAcc, vdwAcc);
      break;
    default:
      sweepRangesImpl<0>(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, lanes, cut2,
                         elecAcc, vdwAcc);
      break;
  }
}

/// Per-pose packed sweep (pass 1 of packedAtomEnergy): 8 independent
/// accumulator lanes summed in fixed order, remainder pairs folded into
/// lane 0 — the exact structure the pre-dispatch kernel used, preserved
/// verbatim so results stay bit-identical with earlier builds.
inline void sweepAtomImpl(const double* __restrict X, const double* __restrict Y,
                          const double* __restrict Z, const double* __restrict Q,
                          const double* __restrict EPS, const double* __restrict SG2,
                          const std::uint32_t* __restrict ranges, std::size_t numRanges,
                          double lx, double ly, double lz, double cut2,
                          double* __restrict elecOut, double* __restrict vdwOut) {
  constexpr double kMinDist2 = kMinPairDistance * kMinPairDistance;
  constexpr int W = 8;
  double elecAcc[W] = {};
  double vdwAcc[W] = {};
  for (std::size_t k = 0; k < numRanges; ++k) {
    std::size_t i = ranges[2 * k];
    const std::size_t end = ranges[2 * k + 1];
    for (; i + W <= end; i += W) {
      for (int l = 0; l < W; ++l) {
        const std::size_t j = i + static_cast<std::size_t>(l);
        const double dx = X[j] - lx;
        const double dy = Y[j] - ly;
        const double dz = Z[j] - lz;
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double in = r2 <= cut2 ? 1.0 : 0.0;
        const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
        const double rinv = 1.0 / std::sqrt(r2c);
        const double s2 = SG2[j] * (rinv * rinv);
        const double s6 = s2 * s2 * s2;
        elecAcc[l] += in * (Q[j] * rinv);
        vdwAcc[l] += in * (EPS[j] * (s6 * s6 - s6));
      }
    }
    for (; i < end; ++i) {
      const double dx = X[i] - lx;
      const double dy = Y[i] - ly;
      const double dz = Z[i] - lz;
      const double r2 = dx * dx + dy * dy + dz * dz;
      const double in = r2 <= cut2 ? 1.0 : 0.0;
      const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
      const double rinv = 1.0 / std::sqrt(r2c);
      const double s2 = SG2[i] * (rinv * rinv);
      const double s6 = s2 * s2 * s2;
      elecAcc[0] += in * (Q[i] * rinv);
      vdwAcc[0] += in * (EPS[i] * (s6 * s6 - s6));
    }
  }
  double elec = 0.0, vdw = 0.0;
  for (int l = 0; l < W; ++l) {
    elec += elecAcc[l];
    vdw += vdwAcc[l];
  }
  *elecOut = elec;
  *vdwOut = vdw;
}

}  // namespace dqndock::metadock::detail
