#include "src/metadock/docking_env.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

const char* rewardModeName(RewardMode m) {
  switch (m) {
    case RewardMode::kSignClip: return "sign-clip";
    case RewardMode::kRawDelta: return "raw-delta";
    case RewardMode::kClippedDelta: return "clipped-delta";
    case RewardMode::kAbsolute: return "absolute";
  }
  return "?";
}

const char* terminationName(Termination t) {
  switch (t) {
    case Termination::kNone: return "none";
    case Termination::kBoundary: return "boundary";
    case Termination::kScoreFloor: return "score-floor";
    case Termination::kTimeLimit: return "time-limit";
    case Termination::kSuccess: return "success";
  }
  return "?";
}

namespace {
Vec3 centerOfMass(std::span<const Vec3> positions, const chem::Molecule& mol) {
  Vec3 acc;
  double mass = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double m = chem::elementMass(mol.element(i));
    acc += positions[i] * m;
    mass += m;
  }
  return mass > 0 ? acc / mass : acc;
}
}  // namespace

DockingEnv::DockingEnv(const chem::Scenario& scenario, EnvConfig config)
    : scenario_(scenario),
      receptor_(scenario.receptor,
                config.scoring.useGrid && config.scoring.cutoff > 0 ? config.scoring.cutoff : 0.0),
      ligand_(scenario.ligand),
      config_(config) {
  scoring_ = std::make_unique<ScoringFunction>(receptor_, ligand_, config_.scoring);
  evaluator_ = std::make_unique<PoseEvaluator>(*scoring_, config_.scoring.pool);
  initialPose_ = ligand_.restPose();
  reset();
  initialComDistance_ =
      distance(centerOfMass(positions_, ligand_.molecule()), receptor_.centerOfMass());
}

int DockingEnv::actionCount() const {
  return 12 + (config_.flexibleLigand ? static_cast<int>(ligand_.torsionCount()) : 0);
}

double DockingEnv::reset() {
  pose_ = initialPose_;
  ligand_.applyPose(pose_, positions_);
  score_ = evaluator_->evaluate(pose_);
  steps_ = 0;
  floorStreak_ = 0;
  lastReason_ = Termination::kNone;
  return score_;
}

void DockingEnv::setPose(const Pose& pose) {
  pose_ = pose;
  ligand_.applyPose(pose_, positions_);
  score_ = evaluator_->evaluate(pose_);
}

StepResult DockingEnv::step(int action) {
  const Pose next = candidatePose(action);
  return stepScored(next, evaluator_->evaluate(next));
}

Pose DockingEnv::candidatePose(int action) const {
  if (terminated()) {
    throw std::logic_error("DockingEnv::step: episode already terminated; call reset()");
  }
  if (action < 0 || action >= actionCount()) {
    throw std::out_of_range("DockingEnv::step: action out of range");
  }

  Pose next = pose_;
  if (action < 6) {
    // Translations: (-x,+x,-y,+y,-z,+z).
    const int axis = action / 2;
    const double sign = (action % 2 == 0) ? -1.0 : 1.0;
    Vec3 delta;
    if (axis == 0) delta = {sign * config_.shiftStep, 0, 0};
    if (axis == 1) delta = {0, sign * config_.shiftStep, 0};
    if (axis == 2) delta = {0, 0, sign * config_.shiftStep};
    next.translation += delta;
  } else if (action < 12) {
    // Rotations about world axes, (-x,+x,-y,+y,-z,+z) ordering.
    const int a = action - 6;
    const int axis = a / 2;
    const double sign = (a % 2 == 0) ? -1.0 : 1.0;
    const Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    const double angle = sign * config_.rotateStepDeg * M_PI / 180.0;
    next.orientation = (Quat::fromAxisAngle(axes[axis], angle) * next.orientation).normalized();
  } else {
    // Torsion twist on rotatable bond (action - 12).
    const std::size_t bond = static_cast<std::size_t>(action - 12);
    next.torsions[bond] =
        std::remainder(next.torsions[bond] + config_.torsionStepDeg * M_PI / 180.0, 2.0 * M_PI);
  }
  return next;
}

StepResult DockingEnv::stepScored(const Pose& next, double score) {
  if (terminated()) {
    throw std::logic_error("DockingEnv::stepScored: episode already terminated; call reset()");
  }
  const double previous = score_;
  pose_ = next;
  ligand_.applyPose(pose_, positions_);
  score_ = score;
  ++steps_;

  StepResult result;
  result.score = score_;
  result.scoreDelta = score_ - previous;
  switch (config_.rewardMode) {
    case RewardMode::kSignClip:
      result.reward = result.scoreDelta > 0.0 ? 1.0 : (result.scoreDelta < 0.0 ? -1.0 : 0.0);
      break;
    case RewardMode::kRawDelta:
      result.reward = result.scoreDelta;
      break;
    case RewardMode::kClippedDelta:
      result.reward = std::clamp(result.scoreDelta, -1.0, 1.0);
      break;
    case RewardMode::kAbsolute:
      result.reward = score_ * config_.rewardScale;
      break;
  }

  // Optional success rule: the crystallographic spot was found.
  if (config_.successRmsd > 0.0 && rmsdToCrystal() <= config_.successRmsd) {
    lastReason_ = Termination::kSuccess;
    result.reward = config_.successReward;
  }

  // Termination rule 1: restricted movement area (extra third of the
  // initial center-of-mass distance). Success, once set, is not
  // overridden by the failure rules.
  const double com =
      distance(centerOfMass(positions_, ligand_.molecule()), receptor_.centerOfMass());
  if (lastReason_ == Termination::kNone &&
      com > config_.boundaryFactor * initialComDistance_) {
    lastReason_ = Termination::kBoundary;
  }

  // Termination rule 2: sustained deep steric penetration.
  if (score_ < config_.scoreFloor) {
    if (++floorStreak_ >= config_.floorPatience && lastReason_ == Termination::kNone) {
      lastReason_ = Termination::kScoreFloor;
    }
  } else {
    floorStreak_ = 0;
  }

  // Termination rule 3: step budget.
  if (lastReason_ == Termination::kNone && steps_ >= config_.maxSteps) {
    lastReason_ = Termination::kTimeLimit;
  }

  result.terminal = lastReason_ != Termination::kNone;
  result.reason = lastReason_;
  return result;
}

double DockingEnv::rmsdToCrystal() const {
  return chem::rmsd(std::span<const Vec3>(positions_), scenario_.crystalPositions);
}

double DockingEnv::crystalScore() const {
  return scoring_->score(scenario_.crystalPositions);
}

}  // namespace dqndock::metadock
