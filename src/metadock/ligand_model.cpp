#include "src/metadock/ligand_model.hpp"

#include "src/chem/topology.hpp"
#include "src/common/mat3.hpp"

namespace dqndock::metadock {

LigandModel::LigandModel(const chem::Molecule& ligand) : molecule_(ligand) {
  originalCentroid_ = molecule_.centroid();
  molecule_.translate(-originalCentroid_);
  templatePositions_.assign(molecule_.positions().begin(), molecule_.positions().end());

  for (const auto& bond : molecule_.bonds()) {
    if (!bond.rotatable) continue;
    TorsionDof dof;
    dof.axisA = bond.a;
    dof.axisB = bond.b;
    dof.movedAtoms = chem::atomsMovedByTorsion(molecule_, bond);
    torsions_.push_back(std::move(dof));
  }

  chem::Topology topo(molecule_);
  anchors_ = topo.hydrogenAnchors(molecule_);
  // Only donor hydrogens keep an anchor; other atoms get -1.
  for (std::size_t i = 0; i < molecule_.atomCount(); ++i) {
    if (molecule_.hbondRole(i) != chem::HBondRole::kDonorHydrogen) anchors_[i] = -1;
  }
}

void LigandModel::applyPose(const Pose& pose, std::vector<Vec3>& out) const {
  out.assign(templatePositions_.begin(), templatePositions_.end());

  // 1. Torsions, applied in DOF order against the current geometry.
  const std::size_t nt = std::min(pose.torsions.size(), torsions_.size());
  for (std::size_t k = 0; k < nt; ++k) {
    const double angle = pose.torsions[k];
    if (angle == 0.0) continue;
    const TorsionDof& dof = torsions_[k];
    const Vec3 pivot = out[static_cast<std::size_t>(dof.axisA)];
    const Vec3 axis = out[static_cast<std::size_t>(dof.axisB)] - pivot;
    const Mat3 rot = Mat3::rotationAboutAxis(axis, angle);
    for (int idx : dof.movedAtoms) {
      Vec3& p = out[static_cast<std::size_t>(idx)];
      p = pivot + rot * (p - pivot);
    }
  }

  // 2. Rigid orientation about the template centroid (the origin), then
  // 3. translation into world space.
  const Mat3 rot = pose.orientation.toMatrix();
  for (auto& p : out) p = rot * p + pose.translation;
}

Pose LigandModel::restPose() const {
  Pose p(torsionCount());
  p.translation = originalCentroid_;
  return p;
}

}  // namespace dqndock::metadock
