/// \file scoring_dispatch.cpp
/// CPUID probe + DQNDOCK_FORCE_KERNEL resolution for the Eq. 1 kernel
/// tiers. Compiled with the plain target flags (no ISA extensions): it
/// must be executable before any probing happened.

#include "src/metadock/scoring_kernels.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dqndock::metadock {

namespace {

bool cpuHasAvx512f() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang builtin: CPUID-backed, independent of the build's -march.
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

}  // namespace

const char* kernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return "generic";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool kernelTierCompiled(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return true;
    case KernelTier::kAvx512:
#ifdef DQNDOCK_KERNEL_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool kernelTierSupported(KernelTier tier) {
  if (!kernelTierCompiled(tier)) return false;
  return tier != KernelTier::kAvx512 || cpuHasAvx512f();
}

KernelTier probeKernelTier() {
  // The probe is pure CPUID (cheap, stable for the process lifetime);
  // cache it so constructing a ScoringFunction in a hot loop never pays
  // for repeated feature queries.
  static const KernelTier best =
      kernelTierSupported(KernelTier::kAvx512) ? KernelTier::kAvx512 : KernelTier::kGeneric;
  return best;
}

KernelTier resolveKernelTier() {
  const char* env = std::getenv("DQNDOCK_FORCE_KERNEL");
  if (env == nullptr || *env == '\0') return probeKernelTier();
  const std::string name(env);
  KernelTier forced;
  if (name == "generic") {
    forced = KernelTier::kGeneric;
  } else if (name == "avx512") {
    forced = KernelTier::kAvx512;
  } else {
    throw std::runtime_error("DQNDOCK_FORCE_KERNEL: unknown kernel tier '" + name +
                             "' (expected 'generic' or 'avx512')");
  }
  // A forced run must never silently fall back — a benchmark reporting
  // generic numbers as avx512 (or a test suite quietly skipping the tier
  // it was asked to pin) is worse than an error.
  if (!kernelTierSupported(forced)) {
    throw std::runtime_error(std::string("DQNDOCK_FORCE_KERNEL=") + name +
                             (kernelTierCompiled(forced)
                                  ? ": this CPU does not support the tier"
                                  : ": tier not compiled into this binary"));
  }
  return forced;
}

namespace detail {

const ScoringKernelOps& scoringKernelOps(KernelTier tier) {
#ifdef DQNDOCK_KERNEL_HAVE_AVX512
  if (tier == KernelTier::kAvx512) return kAvx512KernelOps;
#endif
  if (tier != KernelTier::kGeneric) {
    throw std::logic_error("scoringKernelOps: tier not compiled into this binary");
  }
  return kGenericKernelOps;
}

}  // namespace detail

}  // namespace dqndock::metadock
