#include "src/metadock/pose.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

std::vector<double> Pose::flatten() const {
  std::vector<double> v;
  v.reserve(dofCount());
  v.push_back(translation.x);
  v.push_back(translation.y);
  v.push_back(translation.z);
  v.push_back(orientation.w);
  v.push_back(orientation.x);
  v.push_back(orientation.y);
  v.push_back(orientation.z);
  v.insert(v.end(), torsions.begin(), torsions.end());
  return v;
}

Pose Pose::unflatten(const std::vector<double>& data, std::size_t torsionCount) {
  if (data.size() != 7 + torsionCount) {
    throw std::invalid_argument("Pose::unflatten: size mismatch");
  }
  Pose p(torsionCount);
  p.translation = {data[0], data[1], data[2]};
  p.orientation = Quat{data[3], data[4], data[5], data[6]}.normalized();
  for (std::size_t k = 0; k < torsionCount; ++k) p.torsions[k] = data[7 + k];
  return p;
}

bool Pose::operator==(const Pose& o) const {
  return translation == o.translation && orientation.w == o.orientation.w &&
         orientation.x == o.orientation.x && orientation.y == o.orientation.y &&
         orientation.z == o.orientation.z && torsions == o.torsions;
}

Pose randomPose(const Vec3& center, double radius, std::size_t torsionCount, Rng& rng) {
  Pose p(torsionCount);
  p.translation = center + Vec3{rng.uniform(-radius, radius), rng.uniform(-radius, radius),
                                rng.uniform(-radius, radius)};
  // Uniform random rotation: random axis, angle with sin-weighted sampling
  // via quaternion of four gaussians.
  Quat q{rng.gaussian(), rng.gaussian(), rng.gaussian(), rng.gaussian()};
  p.orientation = q.normalized();
  for (auto& t : p.torsions) t = rng.uniform(-M_PI, M_PI);
  return p;
}

Pose perturbPose(const Pose& base, double transStddev, double rotStddevRad,
                 double torsionStddevRad, Rng& rng) {
  Pose p = base;
  p.translation += Vec3{rng.gaussian(0, transStddev), rng.gaussian(0, transStddev),
                        rng.gaussian(0, transStddev)};
  if (rotStddevRad > 0) {
    const Vec3 axis = rng.unitVector<Vec3>();
    p.orientation = (Quat::fromAxisAngle(axis, rng.gaussian(0, rotStddevRad)) * p.orientation)
                        .normalized();
  }
  for (auto& t : p.torsions) {
    t += rng.gaussian(0, torsionStddevRad);
    // Wrap into (-pi, pi].
    t = std::remainder(t, 2.0 * M_PI);
  }
  return p;
}

}  // namespace dqndock::metadock
