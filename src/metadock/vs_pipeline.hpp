#pragma once

/// \file vs_pipeline.hpp
/// Virtual-screening pipeline (paper Section 2.1): dock a library of
/// ligands against one receptor, rank by best docking score, and report
/// hits. This is the workload METADOCK exists for — "libraries of
/// chemical compounds may contain millions of ligands" — packaged as a
/// reusable API: per-ligand docking jobs run across the thread pool, each
/// with optional gradient refinement and binding-mode clustering, and the
/// ranked results export to CSV.

#include <cstdint>
#include <string>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/metadock/forces.hpp"
#include "src/metadock/metaheuristic.hpp"
#include "src/metadock/pose_cluster.hpp"

namespace dqndock::metadock {

struct ScreeningOptions {
  MetaheuristicParams search = MetaheuristicParams::monteCarlo();
  std::size_t evaluationsPerLigand = 4000;
  bool refineWithGradient = true;   ///< post-search minimization
  bool clusterModes = true;         ///< report distinct binding modes
  double clusterRmsd = 2.0;
  double scoringCutoff = 12.0;
  std::uint64_t seed = 2020;
  /// Ligands ranking above this score are counted as "hits".
  double hitThreshold = 0.0;
};

struct ScreeningHit {
  std::string ligandName;
  std::size_t ligandIndex = 0;   ///< global library index, stable across shards
  std::size_t atoms = 0;
  double bestScore = 0.0;
  double refinedScore = 0.0;     ///< == bestScore when refinement is off
  std::size_t bindingModes = 0;  ///< clusters found (0 when clustering off)
  std::size_t evaluations = 0;
  Pose bestPose;
};

/// Stable total order used everywhere hits are ranked or merged: better
/// refinedScore first, ties broken by ascending ligand index. Because no
/// two hits share a ligand index, the order is total — merged shard
/// reports sort bit-identically regardless of shard count or arrival
/// order.
bool hitOrderBefore(const ScreeningHit& a, const ScreeningHit& b);

struct ScreeningReport {
  std::vector<ScreeningHit> ranked;  ///< descending by hitOrderBefore
  std::size_t hitCount = 0;
  double hitRate = 0.0;
  double totalSeconds = 0.0;
  std::size_t totalEvaluations = 0;
};

/// RNG stream for one ligand, derived from (seed, global library index)
/// only — never from library size, shard layout, or scheduling — so any
/// slicing of the library screens a ligand with bit-identical randomness.
Rng ligandScreenStream(std::uint64_t seed, std::uint64_t globalIndex);

/// Screen `library` against `receptor`. Ligand jobs are independent and
/// run across `pool`; each job draws from ligandScreenStream(seed, index),
/// so the report is reproducible regardless of thread count.
ScreeningReport screenLibrary(const chem::Molecule& receptor,
                              const std::vector<chem::Molecule>& library,
                              ScreeningOptions options = {}, ThreadPool* pool = nullptr);

/// Shardable entry point: screen a contiguous slice of a larger library
/// whose first molecule has global index `globalOffset`. Hits carry
/// global indices and per-ligand RNG streams depend only on
/// (options.seed, global index), so screening [0,N) in one call is
/// bit-identical to screening any partition of [0,N) slice by slice and
/// merging. screenLibrary(...) == screenLibrarySlice(..., 0, ...).
ScreeningReport screenLibrarySlice(const chem::Molecule& receptor,
                                   const std::vector<chem::Molecule>& slice,
                                   std::size_t globalOffset, ScreeningOptions options = {},
                                   ThreadPool* pool = nullptr);

/// Merge partial reports from disjoint library slices into one ranked
/// report (counts and evaluations sum; ranking re-sorted under the stable
/// total order). `librarySize` sets the hit-rate denominator. Optionally
/// truncate the ranking to the best `topK` hits (0 = keep all).
ScreeningReport mergeScreeningReports(const std::vector<ScreeningReport>& parts,
                                      std::size_t librarySize, std::size_t topK = 0);

/// Dump a report as CSV (rank, ligand, atoms, scores, modes, evals).
void writeScreeningCsv(const std::string& path, const ScreeningReport& report);

}  // namespace dqndock::metadock
