#pragma once

/// \file vs_pipeline.hpp
/// Virtual-screening pipeline (paper Section 2.1): dock a library of
/// ligands against one receptor, rank by best docking score, and report
/// hits. This is the workload METADOCK exists for — "libraries of
/// chemical compounds may contain millions of ligands" — packaged as a
/// reusable API: per-ligand docking jobs run across the thread pool, each
/// with optional gradient refinement and binding-mode clustering, and the
/// ranked results export to CSV.

#include <string>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/metadock/forces.hpp"
#include "src/metadock/metaheuristic.hpp"
#include "src/metadock/pose_cluster.hpp"

namespace dqndock::metadock {

struct ScreeningOptions {
  MetaheuristicParams search = MetaheuristicParams::monteCarlo();
  std::size_t evaluationsPerLigand = 4000;
  bool refineWithGradient = true;   ///< post-search minimization
  bool clusterModes = true;         ///< report distinct binding modes
  double clusterRmsd = 2.0;
  double scoringCutoff = 12.0;
  std::uint64_t seed = 2020;
  /// Ligands ranking above this score are counted as "hits".
  double hitThreshold = 0.0;
};

struct ScreeningHit {
  std::string ligandName;
  std::size_t ligandIndex = 0;
  std::size_t atoms = 0;
  double bestScore = 0.0;
  double refinedScore = 0.0;     ///< == bestScore when refinement is off
  std::size_t bindingModes = 0;  ///< clusters found (0 when clustering off)
  std::size_t evaluations = 0;
  Pose bestPose;
};

struct ScreeningReport {
  std::vector<ScreeningHit> ranked;  ///< descending by refinedScore
  std::size_t hitCount = 0;
  double hitRate = 0.0;
  double totalSeconds = 0.0;
  std::size_t totalEvaluations = 0;
};

/// Screen `library` against `receptor`. Ligand jobs are independent and
/// run across `pool`; each job uses a deterministic split RNG stream, so
/// the report is reproducible regardless of thread count.
ScreeningReport screenLibrary(const chem::Molecule& receptor,
                              const std::vector<chem::Molecule>& library,
                              ScreeningOptions options = {}, ThreadPool* pool = nullptr);

/// Dump a report as CSV (rank, ligand, atoms, scores, modes, evals).
void writeScreeningCsv(const std::string& path, const ScreeningReport& report);

}  // namespace dqndock::metadock
