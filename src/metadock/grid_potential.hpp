#pragma once

/// \file grid_potential.hpp
/// Precomputed receptor affinity maps (AutoDock-style [Morris 1998],
/// cited by the paper as a reference docking engine).
///
/// For a rigid receptor the expensive half of Equation 1 never changes,
/// so the receptor's contribution can be tabulated once on a regular 3-D
/// grid: one map of the electrostatic potential (charge-independent,
/// scaled by the ligand atom's charge at lookup) and one map of the
/// combined Lennard-Jones/H-bond field per ligand element type. Scoring a
/// pose then costs one trilinear interpolation per ligand atom instead of
/// a receptor-atom sweep — the standard speed/accuracy trade every
/// production docking engine offers, benchmarked against the direct sum
/// in bench_grid_potential.

#include <array>
#include <memory>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

struct GridPotentialOptions {
  double spacing = 0.5;      ///< grid spacing, Angstrom (AutoDock default ~0.375)
  /// Extra margin around the receptor bounding box. Keep >= cutoff so the
  /// tabulated field decays to ~0 at the box faces: queries outside the
  /// box return the far-field value 0.
  double padding = 12.0;
  double cutoff = 12.0;      ///< receptor-atom interaction cutoff while filling
  /// Energies are clamped to +/- this value when tabulated; keeps the
  /// interpolation numerically sane inside steric clashes while still
  /// signalling "very bad".
  double energyClamp = 1e6;
  ThreadPool* pool = nullptr;  ///< parallel map fill
};

/// One scalar field over the receptor box with trilinear sampling.
class ScalarGrid {
 public:
  ScalarGrid(const Vec3& origin, double spacing, int nx, int ny, int nz);

  double& at(int ix, int iy, int iz);
  double at(int ix, int iy, int iz) const;

  /// Trilinear interpolation inside the box; queries outside return the
  /// far-field value 0 (the box is padded so the field has decayed by
  /// the boundary).
  double sample(const Vec3& p) const;

  /// True when `p` lies inside the interpolation volume.
  bool contains(const Vec3& p) const;

  const Vec3& origin() const { return origin_; }
  double spacing() const { return spacing_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t valueCount() const { return values_.size(); }
  std::size_t memoryBytes() const { return values_.size() * sizeof(double); }

 private:
  Vec3 origin_;
  double spacing_;
  int nx_, ny_, nz_;
  std::vector<double> values_;
};

/// The full set of maps for one receptor.
class GridPotential {
 public:
  /// Tabulates the fields. Cost is O(grid points x receptor atoms within
  /// cutoff); build once per receptor.
  GridPotential(const ReceptorModel& receptor, GridPotentialOptions options = {});

  /// Approximate interaction energy of a ligand atom of element `e` with
  /// charge `q` at `p` (Lennard-Jones + electrostatic; the H-bond term is
  /// folded into the LJ map using the acceptor-weighted well).
  double atomEnergy(chem::Element e, double q, const Vec3& p) const;

  /// Approximate score (= -energy) of a whole ligand conformation.
  double score(const LigandModel& ligand, std::span<const Vec3> positions) const;

  const ScalarGrid& electrostaticMap() const { return *electrostatic_; }
  const ScalarGrid& elementMap(chem::Element e) const;
  std::size_t memoryBytes() const;

  const GridPotentialOptions& options() const { return options_; }

 private:
  GridPotentialOptions options_;
  std::unique_ptr<ScalarGrid> electrostatic_;
  /// LJ+H-bond map per element (built lazily-eagerly for the elements a
  /// drug-like ligand can contain).
  std::array<std::unique_ptr<ScalarGrid>, chem::kElementCount> perElement_;
};

/// Scores poses against the grid instead of the exact sum; drop-in for
/// the metaheuristics when speed matters more than exactness.
class GridScoringFunction {
 public:
  GridScoringFunction(const GridPotential& grid, const LigandModel& ligand)
      : grid_(grid), ligand_(ligand) {}

  double scorePose(const Pose& pose, std::vector<Vec3>& scratch) const {
    ligand_.applyPose(pose, scratch);
    return grid_.score(ligand_, scratch);
  }

 private:
  const GridPotential& grid_;
  const LigandModel& ligand_;
};

}  // namespace dqndock::metadock
