#pragma once

/// \file forces.hpp
/// Analytic gradients of the Equation 1 scoring function.
///
/// Docking engines pair global search (metaheuristics, or DQN here) with
/// gradient-based local refinement of candidate poses: the derivative of
/// the interaction energy with respect to each ligand atom position gives
/// per-atom forces, which reduce to a net force + torque on the rigid
/// body. The hydrogen-bond angular factor is treated as locally constant
/// (its derivative is an order of magnitude below the radial terms),
/// which the finite-difference tests bound explicitly.

#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

/// Pairwise radial derivatives dE/dr (exposed for unit testing).
double electrostaticForceDr(double qi, double qj, double r);
double lennardJonesForceDr(double epsilon, double sigma, double r);
double hbondForceDr(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                    double cosTheta);

/// Net rigid-body generalized force on a ligand conformation.
struct RigidBodyForce {
  Vec3 force;    ///< -dE/d(translation), kcal/mol/Angstrom
  Vec3 torque;   ///< -dE/d(rotation) about the ligand centroid
  double energy = 0.0;
};

/// Computes per-atom gradients of the interaction energy.
class ScoringGradient {
 public:
  ScoringGradient(const ReceptorModel& receptor, const LigandModel& ligand,
                  ScoringOptions options = {});

  /// Per-atom gradient dE/dx_i for every ligand atom; returns the energy.
  /// `gradients` is resized to the ligand atom count.
  double atomGradients(std::span<const Vec3> ligandPositions,
                       std::vector<Vec3>& gradients) const;

  /// Aggregate to a rigid-body force/torque about the current centroid.
  RigidBodyForce rigidBodyForce(std::span<const Vec3> ligandPositions) const;

 private:
  const ReceptorModel& receptor_;
  const LigandModel& ligand_;
  ScoringOptions options_;
  std::array<std::array<chem::LjParams, chem::kElementCount>, chem::kElementCount> ljTable_{};
  chem::HBondParams hbond_{};
};

/// Steepest-descent pose refinement with adaptive step size: moves the
/// rigid-body DOFs along the force/torque until improvement stalls. The
/// standard post-search "energy minimization" stage.
struct MinimizeOptions {
  int maxIterations = 200;
  double initialStep = 0.3;      ///< Angstrom per unit force direction
  double initialRotStep = 0.05;  ///< radians per unit torque direction
  double shrink = 0.5;           ///< step multiplier on failure
  double grow = 1.2;             ///< step multiplier on success
  double minStep = 1e-5;         ///< convergence threshold
  /// Also descend the torsion DOFs (coordinate-wise line search with
  /// central finite differences; the rigid DOFs use the analytic
  /// gradient). Off by default to preserve rigid-body semantics.
  bool refineTorsions = false;
  double torsionStep = 0.05;     ///< radians, adaptive like the others
};

struct MinimizeResult {
  Pose pose;
  double initialScore = 0.0;
  double finalScore = 0.0;
  int iterations = 0;
  bool converged = false;
};

MinimizeResult minimizePose(const ScoringFunction& scoring, const ScoringGradient& gradient,
                            const Pose& start, MinimizeOptions options = {});

}  // namespace dqndock::metadock
