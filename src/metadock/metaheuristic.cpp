#include "src/metadock/metaheuristic.hpp"

#include <algorithm>
#include <cmath>

namespace dqndock::metadock {

MetaheuristicParams MetaheuristicParams::randomSearch() {
  MetaheuristicParams p;
  p.name = "random-search";
  p.populationSize = 64;
  p.selectBest = 0;
  p.selectRandom = 0;
  p.offspringPerPair = 0;
  p.improveSteps = 1;
  // Pure random: "mutations" resample from a very wide kernel and always
  // accept (infinite temperature), so the population is a random stream.
  p.mutationTranslation = 8.0;
  p.mutationRotationDeg = 90.0;
  p.mutationTorsionDeg = 90.0;
  p.temperature = 1e12;
  p.cooling = 1.0;
  return p;
}

MetaheuristicParams MetaheuristicParams::localSearch() {
  MetaheuristicParams p;
  p.name = "local-search";
  p.populationSize = 8;  // multi-start
  p.selectBest = 4;
  p.selectRandom = 0;
  p.offspringPerPair = 0;
  p.improveSteps = 8;
  p.mutationTranslation = 0.5;
  p.mutationRotationDeg = 5.0;
  p.mutationTorsionDeg = 8.0;
  p.temperature = 0.0;  // greedy
  return p;
}

MetaheuristicParams MetaheuristicParams::monteCarlo() {
  MetaheuristicParams p;
  p.name = "monte-carlo";
  p.populationSize = 1;
  p.selectBest = 1;
  p.selectRandom = 0;
  p.offspringPerPair = 0;
  p.improveSteps = 16;
  p.mutationTranslation = 1.0;
  p.mutationRotationDeg = 10.0;
  p.mutationTorsionDeg = 15.0;
  p.temperature = 20.0;  // annealed by `cooling`
  p.cooling = 0.95;
  return p;
}

MetaheuristicParams MetaheuristicParams::genetic() {
  MetaheuristicParams p;
  p.name = "genetic";
  p.populationSize = 48;
  p.selectBest = 8;
  p.selectRandom = 4;
  p.offspringPerPair = 2;
  p.improveSteps = 2;
  p.mutationTranslation = 0.8;
  p.mutationRotationDeg = 8.0;
  p.mutationTorsionDeg = 12.0;
  p.temperature = 0.0;
  return p;
}

Pose crossoverPoses(const Pose& a, const Pose& b, Rng& rng) {
  Pose child(a.torsions.size());
  const double wx = rng.uniform(), wy = rng.uniform(), wz = rng.uniform();
  child.translation = {a.translation.x * wx + b.translation.x * (1 - wx),
                       a.translation.y * wy + b.translation.y * (1 - wy),
                       a.translation.z * wz + b.translation.z * (1 - wz)};
  const double wq = rng.uniform();
  // Hemisphere-align before blending so antipodal quaternions (same
  // rotation) do not cancel out.
  Quat qb = b.orientation;
  const double dot = a.orientation.w * qb.w + a.orientation.x * qb.x + a.orientation.y * qb.y +
                     a.orientation.z * qb.z;
  if (dot < 0) qb = {-qb.w, -qb.x, -qb.y, -qb.z};
  child.orientation = Quat{a.orientation.w * wq + qb.w * (1 - wq),
                           a.orientation.x * wq + qb.x * (1 - wq),
                           a.orientation.y * wq + qb.y * (1 - wq),
                           a.orientation.z * wq + qb.z * (1 - wq)}
                          .normalized();
  for (std::size_t k = 0; k < child.torsions.size(); ++k) {
    child.torsions[k] = rng.bernoulli(0.5) ? a.torsions[k] : b.torsions[k];
  }
  return child;
}

MetaheuristicEngine::MetaheuristicEngine(PoseEvaluator& evaluator, MetaheuristicParams params)
    : evaluator_(evaluator), params_(std::move(params)) {
  torsionCount_ = evaluator_.scoring().ligand().torsionCount();
  if (params_.populationSize == 0) params_.populationSize = 1;
}

std::vector<Candidate> MetaheuristicEngine::initialize(const Pose* start, Rng& rng) {
  const ReceptorModel& receptor = evaluator_.scoring().receptor();
  double radius = params_.searchRadius;
  if (radius <= 0.0) {
    const auto [lo, hi] = receptor.molecule().boundingBox();
    radius = 0.5 * (hi - lo).norm() + 10.0;
  }
  const Vec3 center =
      params_.useSearchCenter ? params_.searchCenter : receptor.centerOfMass();
  std::vector<Pose> poses;
  poses.reserve(params_.populationSize);
  if (start != nullptr) poses.push_back(*start);
  while (poses.size() < params_.populationSize) {
    poses.push_back(randomPose(center, radius, torsionCount_, rng));
  }
  const auto scores = evaluator_.evaluateBatch(poses);
  std::vector<Candidate> population(poses.size());
  for (std::size_t i = 0; i < poses.size(); ++i) {
    population[i] = {std::move(poses[i]), scores[i]};
  }
  return population;
}

std::vector<std::size_t> MetaheuristicEngine::select(const std::vector<Candidate>& population,
                                                     Rng& rng) const {
  // Elite by score, then random extras for diversity.
  std::vector<std::size_t> order(population.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t l, std::size_t r) {
    return population[l].score > population[r].score;
  });
  std::vector<std::size_t> picked;
  const std::size_t elites = std::min(params_.selectBest, order.size());
  picked.assign(order.begin(), order.begin() + static_cast<long>(elites));
  for (std::size_t i = 0; i < params_.selectRandom && elites < order.size(); ++i) {
    picked.push_back(order[elites + rng.uniformInt(order.size() - elites)]);
  }
  if (picked.empty() && !population.empty()) picked.push_back(order.front());
  return picked;
}

std::vector<Pose> MetaheuristicEngine::combine(const std::vector<Candidate>& population,
                                               const std::vector<std::size_t>& selected,
                                               Rng& rng) const {
  std::vector<Pose> children;
  if (params_.offspringPerPair == 0 || selected.size() < 2) return children;
  for (std::size_t i = 0; i + 1 < selected.size(); i += 2) {
    const Candidate& a = population[selected[i]];
    const Candidate& b = population[selected[i + 1]];
    for (std::size_t c = 0; c < params_.offspringPerPair; ++c) {
      children.push_back(crossoverPoses(a.pose, b.pose, rng));
    }
  }
  return children;
}

void MetaheuristicEngine::improve(std::vector<Candidate>& candidates, double temperature,
                                  Rng& rng) {
  if (params_.improveSteps == 0) return;
  const double rotRad = params_.mutationRotationDeg * M_PI / 180.0;
  const double torRad = params_.mutationTorsionDeg * M_PI / 180.0;
  for (std::size_t step = 0; step < params_.improveSteps; ++step) {
    // Batch all proposals so the evaluator can parallelise across them.
    std::vector<Pose> proposals;
    proposals.reserve(candidates.size());
    for (const auto& c : candidates) {
      proposals.push_back(perturbPose(c.pose, params_.mutationTranslation, rotRad, torRad, rng));
    }
    const auto scores = evaluator_.evaluateBatch(proposals);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double delta = scores[i] - candidates[i].score;
      const bool accept =
          delta >= 0.0 || (temperature > 0.0 && rng.uniform() < std::exp(delta / temperature));
      if (accept) {
        candidates[i].pose = std::move(proposals[i]);
        candidates[i].score = scores[i];
      }
    }
  }
}

void MetaheuristicEngine::include(std::vector<Candidate>& population,
                                  std::vector<Candidate>&& newcomers) const {
  for (auto& c : newcomers) population.push_back(std::move(c));
  std::sort(population.begin(), population.end(),
            [](const Candidate& l, const Candidate& r) { return l.score > r.score; });
  if (population.size() > params_.populationSize) population.resize(params_.populationSize);
}

MetaheuristicResult MetaheuristicEngine::run(Rng& rng) { return runImpl(nullptr, rng); }

MetaheuristicResult MetaheuristicEngine::runFrom(const Pose& start, Rng& rng) {
  return runImpl(&start, rng);
}

MetaheuristicResult MetaheuristicEngine::runImpl(const Pose* start, Rng& rng) {
  evaluator_.resetEvaluationCount();
  MetaheuristicResult result;
  double temperature = params_.temperature;

  std::vector<Candidate> population = initialize(start, rng);
  auto updateBest = [&result](const std::vector<Candidate>& pop) {
    for (const auto& c : pop) {
      if (c.score > result.best.score) result.best = c;
    }
  };
  updateBest(population);
  result.history.push_back(result.best.score);

  while (evaluator_.evaluationCount() < params_.maxEvaluations) {
    const auto selected = select(population, rng);

    // Combine: crossover children of the selected parents.
    std::vector<Pose> childPoses = combine(population, selected, rng);
    std::vector<Candidate> newcomers;
    if (!childPoses.empty()) {
      const auto scores = evaluator_.evaluateBatch(childPoses);
      newcomers.resize(childPoses.size());
      for (std::size_t i = 0; i < childPoses.size(); ++i) {
        newcomers[i] = {std::move(childPoses[i]), scores[i]};
      }
    }

    // Improve: anneal/mutate the selected candidates in place.
    std::vector<Candidate> improved;
    improved.reserve(selected.size());
    for (std::size_t idx : selected) improved.push_back(population[idx]);
    improve(improved, temperature, rng);

    // For random search, also refill with fresh random candidates so the
    // stream keeps exploring.
    if (params_.selectBest == 0 && params_.offspringPerPair == 0) {
      population = initialize(nullptr, rng);
    }

    for (auto& c : improved) newcomers.push_back(std::move(c));
    include(population, std::move(newcomers));

    updateBest(population);
    result.history.push_back(result.best.score);
    temperature *= params_.cooling;
    ++result.iterations;
  }

  result.evaluations = evaluator_.evaluationCount();
  return result;
}

}  // namespace dqndock::metadock
