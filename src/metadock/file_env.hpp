#pragma once

/// \file file_env.hpp
/// File-based DQN <-> METADOCK coupling.
///
/// The paper (Section 5, limitation 1) describes its implementation as
/// exchanging data through files on disk: the agent writes the chosen
/// action, METADOCK writes "two separate files ... with the new state and
/// the score respectively", and DQN-Docking reads them back. This class
/// reproduces that protocol faithfully — every step round-trips through
/// three real files — so bench_env_comm can quantify exactly how much the
/// RAM-based coupling (plain DockingEnv) buys, which is the refinement
/// the authors say they are working on.

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/metadock/docking_env.hpp"

namespace dqndock::metadock {

class FileEnv {
 public:
  /// Wraps `env`. Files live under `exchangeDir` (created if missing);
  /// pass an empty path for an auto-named directory under the system temp
  /// dir. Auto-naming is deterministic: the name is derived from `seed`
  /// via the project Rng plus a process-wide instance counter (so two
  /// FileEnvs in one process never collide), not from std::random_device
  /// — the same seed reproduces the same directory sequence run to run.
  /// Concurrent *processes* sharing a temp dir should pass distinct seeds
  /// or explicit directories.
  explicit FileEnv(DockingEnv& env, std::filesystem::path exchangeDir = {},
                   std::uint64_t seed = 0);
  ~FileEnv();

  FileEnv(const FileEnv&) = delete;
  FileEnv& operator=(const FileEnv&) = delete;

  int actionCount() const { return env_.actionCount(); }

  double reset();

  /// One step through the file protocol:
  ///  1. write action.txt,
  ///  2. "METADOCK" reads it, steps, writes state.txt + score.txt,
  ///  3. read both files back and parse them.
  StepResult step(int action);

  /// Ligand coordinates as parsed back from state.txt (not from memory).
  const std::vector<Vec3>& ligandPositionsFromFile() const { return parsedPositions_; }

  const std::filesystem::path& exchangeDir() const { return dir_; }
  DockingEnv& inner() { return env_; }

 private:
  void writeAction(int action) const;
  int readAction() const;
  void writeStateAndScore(const StepResult& result) const;
  StepResult readStateAndScore();

  DockingEnv& env_;
  std::filesystem::path dir_;
  bool ownsDir_ = false;
  std::vector<Vec3> parsedPositions_;
};

}  // namespace dqndock::metadock
