#pragma once

/// \file ligand_model.hpp
/// Precompiled ligand: template coordinates in a canonical local frame
/// plus the torsion machinery (per-rotatable-bond moved-atom sets), so
/// that applying a Pose is a pure function with no per-call graph
/// traversal. One LigandModel is shared by every scoring thread.

#include <vector>

#include "src/chem/molecule.hpp"
#include "src/metadock/pose.hpp"

namespace dqndock::metadock {

/// One torsional degree of freedom.
struct TorsionDof {
  int axisA = 0;                ///< fixed-side axis atom
  int axisB = 0;                ///< moved-side axis atom
  std::vector<int> movedAtoms;  ///< atoms rotated by this torsion
};

class LigandModel {
 public:
  /// Compiles `ligand`. Template coordinates are the ligand's positions
  /// re-centered on their centroid; rotatable bonds become TorsionDofs in
  /// bond order. Throws if a rotatable bond lies on a ring.
  explicit LigandModel(const chem::Molecule& ligand);

  std::size_t atomCount() const { return templatePositions_.size(); }
  std::size_t torsionCount() const { return torsions_.size(); }

  const chem::Molecule& molecule() const { return molecule_; }
  const std::vector<TorsionDof>& torsions() const { return torsions_; }
  const std::vector<Vec3>& templatePositions() const { return templatePositions_; }

  /// For each atom: index of the bonded heavy atom if this atom is a
  /// donor hydrogen, else -1 (drives the H-bond angular term).
  const std::vector<int>& hydrogenAnchors() const { return anchors_; }

  /// World coordinates of every atom under `pose`:
  /// torsions (innermost) -> rigid rotation about the centroid ->
  /// translation. `out` is resized to atomCount().
  void applyPose(const Pose& pose, std::vector<Vec3>& out) const;

  /// Identity pose placing the ligand back at the world coordinates the
  /// source molecule had (translation = original centroid).
  Pose restPose() const;

 private:
  chem::Molecule molecule_;            ///< local-frame copy (centroid origin)
  std::vector<Vec3> templatePositions_;
  std::vector<TorsionDof> torsions_;
  std::vector<int> anchors_;
  Vec3 originalCentroid_;
};

}  // namespace dqndock::metadock
