#pragma once

/// \file trajectory.hpp
/// Episode trajectory recording: captures (pose, score, action, reward)
/// per step and exports the ligand path as a multi-frame XYZ file that
/// any molecular viewer (VMD, PyMOL, OVITO) can animate — how Figure 3's
/// "teach the ligand to find the crystallographic spot" is inspected
/// visually.

#include <iosfwd>
#include <string>
#include <vector>

#include "src/metadock/docking_env.hpp"

namespace dqndock::metadock {

struct TrajectoryFrame {
  Pose pose;
  double score = 0.0;
  int action = -1;        ///< action that *led* to this frame (-1 for reset)
  double reward = 0.0;
};

class Trajectory {
 public:
  explicit Trajectory(const LigandModel& ligand) : ligand_(&ligand) {}

  void clear() { frames_.clear(); }
  void record(const Pose& pose, double score, int action = -1, double reward = 0.0);

  /// Convenience: capture the environment's current state.
  void recordFrom(const DockingEnv& env, int action = -1, double reward = 0.0);

  std::size_t frameCount() const { return frames_.size(); }
  const std::vector<TrajectoryFrame>& frames() const { return frames_; }

  /// Best-scoring frame index; throws std::logic_error when empty.
  std::size_t bestFrame() const;

  /// Multi-frame XYZ export (one XYZ block per frame, comment line holds
  /// step/score/action/reward).
  void writeXyz(std::ostream& out) const;
  void writeXyzFile(const std::string& path) const;

  /// Per-frame score series (for plotting an episode's score profile).
  std::vector<double> scores() const;

 private:
  const LigandModel* ligand_;
  std::vector<TrajectoryFrame> frames_;
};

/// Roll out one episode under a fixed policy functor `policy(env) -> int`
/// recording every frame. Returns the trajectory.
template <typename Policy>
Trajectory recordEpisode(DockingEnv& env, Policy&& policy, int maxSteps = 1 << 20) {
  Trajectory traj(env.ligand());
  env.reset();
  traj.recordFrom(env);
  for (int t = 0; t < maxSteps && !env.terminated(); ++t) {
    const int action = policy(env);
    const StepResult r = env.step(action);
    traj.recordFrom(env, action, r.reward);
  }
  return traj;
}

}  // namespace dqndock::metadock
