#include "src/metadock/file_env.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace dqndock::metadock {

namespace fs = std::filesystem;

namespace {

/// Deterministic auto-generated exchange-dir name. The configured seed
/// (not std::random_device) drives the name so runs are reproducible;
/// the process-wide counter keeps simultaneous FileEnvs in one process
/// on distinct directories even with equal seeds.
std::string exchangeDirName(std::uint64_t seed) {
  static std::atomic<std::uint64_t> instance{0};
  const std::uint64_t n = instance.fetch_add(1, std::memory_order_relaxed);
  Rng rng(seed ^ (n * 0x9e3779b97f4a7c15ULL));
  return "dqndock-ipc-" + std::to_string(rng()) + "-" + std::to_string(n);
}

}  // namespace

FileEnv::FileEnv(DockingEnv& env, fs::path exchangeDir, std::uint64_t seed)
    : env_(env), dir_(std::move(exchangeDir)) {
  if (dir_.empty()) {
    dir_ = fs::temp_directory_path() / exchangeDirName(seed);
    ownsDir_ = true;
  }
  fs::create_directories(dir_);
}

FileEnv::~FileEnv() {
  if (ownsDir_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best-effort cleanup
  }
}

double FileEnv::reset() {
  const double score = env_.reset();
  StepResult initial;
  initial.score = score;
  writeStateAndScore(initial);
  const StepResult parsed = readStateAndScore();
  return parsed.score;
}

StepResult FileEnv::step(int action) {
  // Agent side: persist the chosen action.
  writeAction(action);
  // METADOCK side: read the action file, advance the simulation, persist
  // the new state and its score as two separate files (paper Section 5).
  const int parsedAction = readAction();
  const StepResult result = env_.step(parsedAction);
  writeStateAndScore(result);
  // Agent side again: load both files back.
  return readStateAndScore();
}

void FileEnv::writeAction(int action) const {
  std::ofstream out(dir_ / "action.txt", std::ios::trunc);
  if (!out) throw std::runtime_error("FileEnv: cannot write action.txt");
  out << action << '\n';
  out.flush();
}

int FileEnv::readAction() const {
  std::ifstream in(dir_ / "action.txt");
  if (!in) throw std::runtime_error("FileEnv: cannot read action.txt");
  int action = -1;
  in >> action;
  if (!in) throw std::runtime_error("FileEnv: malformed action.txt");
  return action;
}

void FileEnv::writeStateAndScore(const StepResult& result) const {
  {
    std::ofstream out(dir_ / "state.txt", std::ios::trunc);
    if (!out) throw std::runtime_error("FileEnv: cannot write state.txt");
    out.precision(17);
    const auto positions = env_.ligandPositions();
    out << positions.size() << '\n';
    for (const auto& p : positions) out << p.x << ' ' << p.y << ' ' << p.z << '\n';
    out.flush();
  }
  {
    std::ofstream out(dir_ / "score.txt", std::ios::trunc);
    if (!out) throw std::runtime_error("FileEnv: cannot write score.txt");
    out.precision(17);
    out << result.score << ' ' << result.reward << ' ' << (result.terminal ? 1 : 0) << ' '
        << static_cast<int>(result.reason) << '\n';
    out.flush();
  }
}

StepResult FileEnv::readStateAndScore() {
  {
    std::ifstream in(dir_ / "state.txt");
    if (!in) throw std::runtime_error("FileEnv: cannot read state.txt");
    std::size_t n = 0;
    in >> n;
    parsedPositions_.resize(n);
    for (auto& p : parsedPositions_) in >> p.x >> p.y >> p.z;
    if (!in) throw std::runtime_error("FileEnv: malformed state.txt");
  }
  StepResult result;
  {
    std::ifstream in(dir_ / "score.txt");
    if (!in) throw std::runtime_error("FileEnv: cannot read score.txt");
    int terminal = 0, reason = 0;
    in >> result.score >> result.reward >> terminal >> reason;
    if (!in) throw std::runtime_error("FileEnv: malformed score.txt");
    result.terminal = terminal != 0;
    result.reason = static_cast<Termination>(reason);
  }
  return result;
}

}  // namespace dqndock::metadock
