#include "src/metadock/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/metadock/scoring_kernels.hpp"

namespace dqndock::metadock {

using chem::Element;
using chem::ForceField;
using chem::HBondRole;

double electrostaticEnergy(double qi, double qj, double r) {
  return chem::kCoulomb * qi * qj / std::max(r, kMinPairDistance);
}

double lennardJonesEnergy(double epsilon, double sigma, double r) {
  const double inv = sigma / std::max(r, kMinPairDistance);
  const double inv2 = inv * inv;
  const double inv6 = inv2 * inv2 * inv2;
  return 4.0 * epsilon * (inv6 * inv6 - inv6);
}

double hbondEnergy(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                   double cosTheta) {
  const double rc = std::max(r, kMinPairDistance);
  // cos(theta) gates the directional 12-10 well; the off-axis remainder
  // sin(theta) falls back to the plain Lennard-Jones shape (Eq. 1).
  const double c = std::clamp(cosTheta, 0.0, 1.0);
  const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double r2 = rc * rc;
  const double r10 = r2 * r2 * r2 * r2 * r2;
  const double r12 = r10 * r2;
  return c * (hb.c12 / r12 - hb.d10 / r10) + s * lennardJonesEnergy(epsilon, sigma, rc);
}

ScoringFunction::ScoringFunction(const ReceptorModel& receptor, const LigandModel& ligand,
                                 ScoringOptions options)
    : receptor_(receptor),
      ligand_(ligand),
      options_(options),
      // Dispatch table chosen once per ScoringFunction: CPUID probe with
      // an optional DQNDOCK_FORCE_KERNEL override (throws on an
      // unsupported forced tier, so a pinned test/bench run can't
      // silently fall back).
      kernel_(&detail::scoringKernelOps(resolveKernelTier())) {
  if (options_.useGrid && options_.cutoff > 0.0 && !receptor_.hasGrid()) {
    throw std::invalid_argument(
        "ScoringFunction: useGrid requires a ReceptorModel built with a grid");
  }
  if (options_.useGrid && options_.cutoff > 0.0 &&
      receptor_.grid().cellSize() + 1e-12 < options_.cutoff) {
    throw std::invalid_argument(
        "ScoringFunction: grid cell size must be >= cutoff for 27-cell coverage");
  }
  const ForceField& ff = ForceField::standard();
  for (int a = 0; a < chem::kElementCount; ++a) {
    for (int b = 0; b < chem::kElementCount; ++b) {
      ljTable_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          ff.ljPair(static_cast<Element>(a), static_cast<Element>(b));
    }
  }
  hbond_ = ff.hbond();

  // Packed-kernel tables: one pair-parameter row over the cell-sorted
  // receptor per ligand element actually present, plus hoisted per-atom
  // ligand data so the hot loop never touches the Molecule.
  const std::size_t ln = ligand_.atomCount();
  atomRow_.resize(ln);
  ligCharges_.resize(ln);
  ligRoles_.resize(ln);
  ligElems_.resize(ln);
  std::array<int, chem::kElementCount> rowOf;
  rowOf.fill(-1);
  for (std::size_t la = 0; la < ln; ++la) {
    const Element e = ligand_.molecule().element(la);
    int& row = rowOf[static_cast<std::size_t>(e)];
    if (row < 0) {
      row = static_cast<int>(pairRows_.size());
      pairRows_.push_back(ff.pairRows(e, receptor_.packedElements()));
    }
    atomRow_[la] = row;
    ligCharges_[la] = ligand_.molecule().charge(la);
    ligRoles_[la] = ligand_.molecule().hbondRole(la);
    ligElems_[la] = e;
  }
}

ScoreTerms ScoringFunction::pairEnergy(std::size_t ra, std::size_t la, const Vec3& ligandPos,
                                       std::span<const Vec3> allLigandPositions) const {
  ScoreTerms terms;
  const Vec3& rpos = receptor_.positions()[ra];
  const double r = distance(rpos, ligandPos);
  if (options_.cutoff > 0.0 && r > options_.cutoff) return terms;

  const Element re = receptor_.elements()[ra];
  const Element le = ligand_.molecule().element(la);
  const chem::LjParams lj = ljTable_[static_cast<std::size_t>(re)][static_cast<std::size_t>(le)];

  terms.electrostatic =
      electrostaticEnergy(receptor_.charges()[ra], ligand_.molecule().charge(la), r);
  terms.vdw = lennardJonesEnergy(lj.epsilon, lj.sigma, r);

  // Hydrogen bond: donor hydrogen on one side, acceptor on the other.
  const HBondRole rRole = receptor_.roles()[ra];
  const HBondRole lRole = ligand_.molecule().hbondRole(la);
  if (rRole == HBondRole::kDonorHydrogen && lRole == HBondRole::kAcceptor) {
    const Vec3 dir = receptor_.donorDirections()[ra];
    const Vec3 toAcceptor = (ligandPos - rpos).normalized();
    const double cosTheta = dir.norm2() > 0.0 ? dir.dot(toAcceptor) : 1.0;
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  } else if (rRole == HBondRole::kAcceptor && lRole == HBondRole::kDonorHydrogen) {
    const int anchor = ligand_.hydrogenAnchors()[la];
    double cosTheta = 1.0;
    if (anchor >= 0) {
      const Vec3 dir =
          (ligandPos - allLigandPositions[static_cast<std::size_t>(anchor)]).normalized();
      cosTheta = dir.dot((rpos - ligandPos).normalized());
    }
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  }
  return terms;
}

ScoreTerms ScoringFunction::scalarAtomEnergy(std::size_t la, const Vec3& lpos,
                                             std::span<const Vec3> all) const {
  ScoreTerms acc;
  const bool pruned = options_.useGrid && options_.cutoff > 0.0;
  if (pruned) {
    receptor_.grid().forEachNear(lpos,
                                 [&](std::size_t ra) { acc += pairEnergy(ra, la, lpos, all); });
  } else {
    const std::size_t n = receptor_.atomCount();
    for (std::size_t ra = 0; ra < n; ++ra) {
      acc += pairEnergy(ra, la, lpos, all);
    }
  }
  return acc;
}

ScoreTerms ScoringFunction::packedAtomEnergy(std::size_t la, const Vec3& lpos,
                                             std::span<const Vec3> all) const {
  ScoreTerms terms;
  const std::size_t n = receptor_.atomCount();
  if (n == 0) return terms;

  // Candidate ranges over the cell-sorted order: the 27-neighbourhood
  // when grid-pruned, the whole receptor otherwise, flattened to the
  // packed [first, end) pairs the dispatch kernels consume.
  NeighborGrid::Range ranges[NeighborGrid::kMaxQueryRanges];
  std::uint32_t flat[2 * NeighborGrid::kMaxQueryRanges];
  std::size_t numRanges;
  if (options_.useGrid && options_.cutoff > 0.0) {
    numRanges = static_cast<std::size_t>(receptor_.grid().queryRanges(lpos, ranges));
    for (std::size_t k = 0; k < numRanges; ++k) {
      flat[2 * k] = ranges[k].first;
      flat[2 * k + 1] = ranges[k].first + ranges[k].count;
    }
  } else {
    flat[0] = 0;
    flat[1] = static_cast<std::uint32_t>(n);
    numRanges = 1;
  }

  // Pass 1: fused electrostatics + Lennard-Jones over flat SoA arrays,
  // through the runtime-dispatched sweep (branch-free, out-of-cutoff
  // pairs contribute an exact 0.0; fixed 8-lane accumulator order, so
  // results are bit-identical across tiers, builds, and thread counts).
  const chem::PairRowTable& row = pairRows_[static_cast<std::size_t>(atomRow_[la])];
  const double cut2 = options_.cutoff > 0.0 ? options_.cutoff * options_.cutoff
                                            : std::numeric_limits<double>::infinity();
  double elec = 0.0, vdw = 0.0;
  kernel_->sweepAtom(receptor_.packedX().data(), receptor_.packedY().data(),
                     receptor_.packedZ().data(), receptor_.packedCharges().data(),
                     row.epsilon.data(), row.sigma2.data(), flat, numRanges, lpos.x, lpos.y,
                     lpos.z, cut2, &elec, &vdw);
  terms.electrostatic = chem::kCoulomb * ligCharges_[la] * elec;
  terms.vdw = 4.0 * vdw;

  // Pass 2: hydrogen bond over the sparse packed site lists, hoisted out
  // of the hot loop and shared with the batched kernel.
  const int anchor = ligand_.hydrogenAnchors()[la];
  const Vec3* anchorPos = anchor >= 0 ? &all[static_cast<std::size_t>(anchor)] : nullptr;
  terms.hbond = packedHBondEnergy(la, lpos, anchorPos);
  return terms;
}

double ScoringFunction::packedHBondEnergy(std::size_t la, const Vec3& lpos,
                                          const Vec3* anchorPos) const {
  // Donor hydrogen on one side, acceptor on the other. The cutoff test
  // mirrors the scalar path exactly; with a grid, every in-cutoff site is
  // inside the 27-neighbourhood by construction (cell size >= cutoff), so
  // scanning the full list loses nothing.
  double hb = 0.0;
  const HBondRole lRole = ligRoles_[la];
  if (lRole == HBondRole::kAcceptor) {
    const Element le = ligElems_[la];
    for (const ReceptorModel::HBondSite& d : receptor_.donorHydrogenSites()) {
      const double r = distance(d.pos, lpos);
      if (options_.cutoff > 0.0 && r > options_.cutoff) continue;
      const chem::LjParams lj =
          ljTable_[static_cast<std::size_t>(d.element)][static_cast<std::size_t>(le)];
      const Vec3 toAcceptor = (lpos - d.pos).normalized();
      const double cosTheta = d.donorDir.norm2() > 0.0 ? d.donorDir.dot(toAcceptor) : 1.0;
      hb += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
    }
  } else if (lRole == HBondRole::kDonorHydrogen) {
    const Element le = ligElems_[la];
    for (const ReceptorModel::HBondSite& a : receptor_.acceptorSites()) {
      const double r = distance(a.pos, lpos);
      if (options_.cutoff > 0.0 && r > options_.cutoff) continue;
      const chem::LjParams lj =
          ljTable_[static_cast<std::size_t>(a.element)][static_cast<std::size_t>(le)];
      double cosTheta = 1.0;
      if (anchorPos != nullptr) {
        const Vec3 dir = (lpos - *anchorPos).normalized();
        cosTheta = dir.dot((a.pos - lpos).normalized());
      }
      hb += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
    }
  }
  return hb;
}

ScoreTerms ScoringFunction::atomEnergy(std::size_t la, const Vec3& lpos,
                                       std::span<const Vec3> all) const {
  return options_.packed ? packedAtomEnergy(la, lpos, all) : scalarAtomEnergy(la, lpos, all);
}

namespace {

/// Conservative fp slack for the subcell pruning geometry: inflates the
/// cutoff reach and subcell boxes so floor/division rounding can only add
/// masked (exact-zero) work, never drop an in-cutoff pair.
constexpr double kGeomMargin = 1e-6;

}  // namespace

void ScoringFunction::energyBatchTile(std::span<const Pose> poses, BatchScratch& s,
                                      std::span<ScoreTerms> out) const {
  const std::size_t L = poses.size();
  const std::size_t n = ligand_.atomCount();

  // Transform the tile into batch-major SoA lanes: lane b of ligand atom
  // la lives at [la * L + b], so the kernel's inner loop streams
  // contiguous doubles.
  s.lx.resize(n * L);
  s.ly.resize(n * L);
  s.lz.resize(n * L);
  for (std::size_t b = 0; b < L; ++b) {
    ligand_.applyPose(poses[b], s.pose);
    for (std::size_t la = 0; la < n; ++la) {
      s.lx[la * L + b] = s.pose[la].x;
      s.ly[la * L + b] = s.pose[la].y;
      s.lz[la * L + b] = s.pose[la].z;
    }
  }
  for (std::size_t b = 0; b < L; ++b) out[b] = ScoreTerms{};

  const std::size_t rn = receptor_.atomCount();
  const bool pruned = options_.useGrid && options_.cutoff > 0.0;
  const double cut2 = options_.cutoff > 0.0 ? options_.cutoff * options_.cutoff
                                            : std::numeric_limits<double>::infinity();
  const double* X = receptor_.packedX().data();
  const double* Y = receptor_.packedY().data();
  const double* Z = receptor_.packedZ().data();
  const double* Q = receptor_.packedCharges().data();

  for (std::size_t la = 0; la < n; ++la) {
    const double* lx = s.lx.data() + la * L;
    const double* ly = s.ly.data() + la * L;
    const double* lz = s.lz.data() + la * L;
    const chem::PairRowTable& row = pairRows_[static_cast<std::size_t>(atomRow_[la])];
    const double* EPS = row.epsilon.data();
    const double* SG2 = row.sigma2.data();

    double elecAcc[kMaxBatchLanes] = {};
    double vdwAcc[kMaxBatchLanes] = {};

    if (rn > 0 && !pruned) {
      const std::uint32_t whole[2] = {0u, static_cast<std::uint32_t>(rn)};
      kernel_->sweepRanges(X, Y, Z, Q, EPS, SG2, whole, 1, lx, ly, lz, L, cut2, elecAcc, vdwAcc);
    } else if (rn > 0) {
      const NeighborGrid& g = receptor_.grid();
      const double reach = options_.cutoff + kGeomMargin;
      const double cut2m = reach * reach;
      const double cell = g.cellSize();
      const Vec3& o = g.origin();
      const int S = g.hasSubcells() ? g.subdiv() : 1;
      const std::size_t S3 = static_cast<std::size_t>(S) * S * S;
      const std::uint32_t* subOff =
          g.hasSubcells() ? g.subOffsets().data() : g.cellOffsets().data();
      const double sub = cell / static_cast<double>(S);
      const double invSub = 1.0 / sub;

      // Lane-bisection work list: when a lane group's union cell window
      // exceeds the locality heuristic, split the group in half and retry
      // — halves have tighter bounding boxes. A single lane's window is
      // at most 3x3x3 cells, so recursion always terminates in a union
      // sweep; and because every path sweeps an ascending-packed-order
      // superset of each lane's in-cutoff pairs with exact-zero masking,
      // per-lane results are bit-independent of how the tile splits.
      struct LaneSpan {
        std::uint16_t b0, b1;
      };
      LaneSpan work[2 * kMaxBatchLanes];
      int top = 0;
      work[top++] = {0, static_cast<std::uint16_t>(L)};
      while (top > 0) {
        const LaneSpan span = work[--top];
        const std::size_t b0 = span.b0, b1 = span.b1;
        // Bounding box of this atom's positions over the lane group.
        double bx0 = lx[b0], bx1 = lx[b0], by0 = ly[b0], by1 = ly[b0];
        double bz0 = lz[b0], bz1 = lz[b0];
        for (std::size_t b = b0 + 1; b < b1; ++b) {
          bx0 = std::min(bx0, lx[b]);
          bx1 = std::max(bx1, lx[b]);
          by0 = std::min(by0, ly[b]);
          by1 = std::max(by1, ly[b]);
          bz0 = std::min(bz0, lz[b]);
          bz1 = std::max(bz1, lz[b]);
        }
        // Cell window covering the cutoff reach of the bounding box, as
        // doubles first so far-away lanes cannot overflow int.
        const double fx0 = std::floor((bx0 - reach - o.x) / cell);
        const double fx1 = std::floor((bx1 + reach - o.x) / cell);
        const double fy0 = std::floor((by0 - reach - o.y) / cell);
        const double fy1 = std::floor((by1 + reach - o.y) / cell);
        const double fz0 = std::floor((bz0 - reach - o.z) / cell);
        const double fz1 = std::floor((bz1 + reach - o.z) / cell);
        const bool overlaps = fx1 >= 0.0 && fx0 <= static_cast<double>(g.nx() - 1) &&
                              fy1 >= 0.0 && fy0 <= static_cast<double>(g.ny() - 1) &&
                              fz1 >= 0.0 && fz0 <= static_cast<double>(g.nz() - 1);
        if (!overlaps) continue;  // every lane in the group is beyond reach
        const int px0 = static_cast<int>(std::max(fx0, 0.0));
        const int px1 = static_cast<int>(std::min(fx1, static_cast<double>(g.nx() - 1)));
        const int py0 = static_cast<int>(std::max(fy0, 0.0));
        const int py1 = static_cast<int>(std::min(fy1, static_cast<double>(g.ny() - 1)));
        const int pz0 = static_cast<int>(std::max(fz0, 0.0));
        const int pz1 = static_cast<int>(std::min(fz1, static_cast<double>(g.nz() - 1)));
        const std::size_t windowCells = static_cast<std::size_t>(px1 - px0 + 1) *
                                        static_cast<std::size_t>(py1 - py0 + 1) *
                                        static_cast<std::size_t>(pz1 - pz0 + 1);
        if (windowCells > kMaxUnionWindowCells && b1 - b0 > 1) {
          const std::size_t mid = b0 + (b1 - b0) / 2;
          work[top++] = {static_cast<std::uint16_t>(mid), static_cast<std::uint16_t>(b1)};
          work[top++] = {static_cast<std::uint16_t>(b0), static_cast<std::uint16_t>(mid)};
          continue;
        }
        // Union sweep, sliced at subcell resolution. Phase 1 is pure
        // geometry: walk the window's global (z, y) subcell rows, skip
        // rows farther than the cutoff from the group bounding box, clip
        // each surviving row's x extent by the remaining budget (sphere
        // slicing), and emit the packed [first, end) receptor ranges into
        // the scratch range list. Phase 2 sweeps the whole list in one
        // kernel call, so lane positions and accumulators stay in
        // registers across every range. The row order (gz, gy, px
        // ascending) is a fixed total order on subcells independent of
        // the window bounds, so a lane's in-cutoff pairs are visited in
        // the same order no matter how the tile was split — the property
        // the bit-determinism argument needs.
        const std::size_t lanes = b1 - b0;
        const int gz0 = pz0 * S, gz1 = pz1 * S + (S - 1);
        const int gy0 = py0 * S, gy1 = py1 * S + (S - 1);
        const std::size_t nzSub = static_cast<std::size_t>(gz1 - gz0 + 1);
        const std::size_t nySub = static_cast<std::size_t>(gy1 - gy0 + 1);
        s.slab.resize(nzSub + nySub);
        double* dz2v = s.slab.data();
        double* dy2v = s.slab.data() + nzSub;
        for (int gz = gz0; gz <= gz1; ++gz) {
          const double zlo = o.z + gz * sub - kGeomMargin;
          const double zhi = zlo + sub + 2.0 * kGeomMargin;
          const double dz = std::max({0.0, zlo - bz1, bz0 - zhi});
          dz2v[gz - gz0] = dz * dz;
        }
        for (int gy = gy0; gy <= gy1; ++gy) {
          const double ylo = o.y + gy * sub - kGeomMargin;
          const double yhi = ylo + sub + 2.0 * kGeomMargin;
          const double dy = std::max({0.0, ylo - by1, by0 - yhi});
          dy2v[gy - gy0] = dy * dy;
        }
        s.ranges.clear();
        for (int gz = gz0; gz <= gz1; ++gz) {
          const double dz2 = dz2v[gz - gz0];
          if (dz2 > cut2m) continue;
          const int pz = gz / S, szz = gz - pz * S;
          for (int gy = gy0; gy <= gy1; ++gy) {
            const double d2 = dy2v[gy - gy0] + dz2;
            if (d2 > cut2m) continue;
            const int py = gy / S, syy = gy - py * S;
            const double rx = std::sqrt(cut2m - d2);
            // Global x subcell range for this row, sphere-clipped; clamp
            // in doubles so far-out bounding boxes cannot overflow int.
            const double fgx0 = std::floor((bx0 - rx - kGeomMargin - o.x) * invSub);
            const double fgx1 = std::floor((bx1 + rx + kGeomMargin - o.x) * invSub);
            const int gx0 =
                static_cast<int>(std::max(fgx0, static_cast<double>(px0) * S));
            const int gx1 =
                static_cast<int>(std::min(fgx1, static_cast<double>(px1) * S + (S - 1)));
            if (gx1 < gx0) continue;
            const std::size_t rowKey = (static_cast<std::size_t>(szz) * S + syy) * S;
            for (int px = gx0 / S; px <= gx1 / S; ++px) {
              const int sx0 = std::max(gx0 - px * S, 0);
              const int sx1 = std::min(gx1 - px * S, S - 1);
              const std::size_t k0 = g.cellLinearIndex(px, py, pz) * S3 + rowKey;
              const std::uint32_t first = subOff[k0 + static_cast<std::size_t>(sx0)];
              const std::uint32_t end = subOff[k0 + static_cast<std::size_t>(sx1) + 1];
              if (end > first) {
                // Coalesce ranges that abut in packed index space; the
                // swept j sequence is unchanged.
                if (!s.ranges.empty() && s.ranges.back() == first) {
                  s.ranges.back() = end;
                } else {
                  s.ranges.push_back(first);
                  s.ranges.push_back(end);
                }
              }
            }
          }
        }
        if (!s.ranges.empty()) {
          kernel_->sweepRanges(X, Y, Z, Q, EPS, SG2, s.ranges.data(), s.ranges.size() / 2, lx + b0,
                      ly + b0, lz + b0, lanes, cut2, elecAcc + b0, vdwAcc + b0);
        }
      }
    }
    for (std::size_t b = 0; b < L; ++b) {
      out[b].electrostatic += chem::kCoulomb * ligCharges_[la] * elecAcc[b];
      out[b].vdw += 4.0 * vdwAcc[b];
    }

    // H-bond pass: per pose, the exact per-pose-kernel code path (same
    // site order, same operations), so this term is bit-identical to
    // per-pose packed scoring.
    if (ligRoles_[la] != HBondRole::kNone) {
      const int anchor = ligand_.hydrogenAnchors()[la];
      for (std::size_t b = 0; b < L; ++b) {
        const Vec3 lpos{lx[b], ly[b], lz[b]};
        Vec3 anchorPos;
        const Vec3* ap = nullptr;
        if (anchor >= 0) {
          const std::size_t ai = static_cast<std::size_t>(anchor);
          anchorPos = Vec3{s.lx[ai * L + b], s.ly[ai * L + b], s.lz[ai * L + b]};
          ap = &anchorPos;
        }
        out[b].hbond += packedHBondEnergy(la, lpos, ap);
      }
    }
  }
}

void ScoringFunction::energyBatch(std::span<const Pose> poses, BatchScratch& scratch,
                                  std::span<ScoreTerms> out) const {
  if (out.size() != poses.size()) {
    throw std::invalid_argument("ScoringFunction::energyBatch: output size mismatch");
  }
  if (!options_.packed) {
    // Scalar fallback: exactly the per-pose path, pose by pose.
    for (std::size_t i = 0; i < poses.size(); ++i) {
      ligand_.applyPose(poses[i], scratch.pose);
      out[i] = energy(scratch.pose);
    }
    return;
  }
  for (std::size_t i0 = 0; i0 < poses.size(); i0 += kMaxBatchLanes) {
    const std::size_t tile = std::min(kMaxBatchLanes, poses.size() - i0);
    energyBatchTile(poses.subspan(i0, tile), scratch, out.subspan(i0, tile));
  }
}

void ScoringFunction::scoreBatch(std::span<const Pose> poses, BatchScratch& scratch,
                                 std::span<double> out) const {
  if (out.size() != poses.size()) {
    throw std::invalid_argument("ScoringFunction::scoreBatch: output size mismatch");
  }
  scratch.terms.resize(poses.size());
  energyBatch(poses, scratch, scratch.terms);
  for (std::size_t i = 0; i < poses.size(); ++i) out[i] = -scratch.terms[i].total();
}

ScoreTerms ScoringFunction::energy(std::span<const Vec3> ligandPositions) const {
  if (ligandPositions.size() != ligand_.atomCount()) {
    throw std::invalid_argument("ScoringFunction::energy: ligand position count mismatch");
  }
  const std::size_t n = ligandPositions.size();
  if (options_.pool == nullptr || n < 8) {
    ScoreTerms acc;
    for (std::size_t la = 0; la < n; ++la) {
      acc += atomEnergy(la, ligandPositions[la], ligandPositions);
    }
    return acc;
  }
  // Ordered per-atom partials: each atom's terms are computed exactly as
  // in the serial path and summed in atom order afterwards, so the result
  // is bit-identical for any thread count (and to the serial path) —
  // unlike the old mutex-ordered chunk accumulation.
  std::vector<ScoreTerms> partials(n);
  options_.pool->parallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t la = lo; la < hi; ++la) {
      partials[la] = atomEnergy(la, ligandPositions[la], ligandPositions);
    }
  });
  ScoreTerms acc;
  for (const ScoreTerms& p : partials) acc += p;
  return acc;
}

double ScoringFunction::score(std::span<const Vec3> ligandPositions) const {
  return -energy(ligandPositions).total();
}

double ScoringFunction::scorePose(const Pose& pose, std::vector<Vec3>& scratch) const {
  ligand_.applyPose(pose, scratch);
  return score(scratch);
}

double ScoringFunction::scorePose(const Pose& pose) const {
  std::vector<Vec3> scratch;
  return scorePose(pose, scratch);
}

}  // namespace dqndock::metadock
