#include "src/metadock/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dqndock::metadock {

using chem::Element;
using chem::ForceField;
using chem::HBondRole;

double electrostaticEnergy(double qi, double qj, double r) {
  return chem::kCoulomb * qi * qj / std::max(r, kMinPairDistance);
}

double lennardJonesEnergy(double epsilon, double sigma, double r) {
  const double inv = sigma / std::max(r, kMinPairDistance);
  const double inv2 = inv * inv;
  const double inv6 = inv2 * inv2 * inv2;
  return 4.0 * epsilon * (inv6 * inv6 - inv6);
}

double hbondEnergy(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                   double cosTheta) {
  const double rc = std::max(r, kMinPairDistance);
  // cos(theta) gates the directional 12-10 well; the off-axis remainder
  // sin(theta) falls back to the plain Lennard-Jones shape (Eq. 1).
  const double c = std::clamp(cosTheta, 0.0, 1.0);
  const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double r2 = rc * rc;
  const double r10 = r2 * r2 * r2 * r2 * r2;
  const double r12 = r10 * r2;
  return c * (hb.c12 / r12 - hb.d10 / r10) + s * lennardJonesEnergy(epsilon, sigma, rc);
}

ScoringFunction::ScoringFunction(const ReceptorModel& receptor, const LigandModel& ligand,
                                 ScoringOptions options)
    : receptor_(receptor), ligand_(ligand), options_(options) {
  if (options_.useGrid && options_.cutoff > 0.0 && !receptor_.hasGrid()) {
    throw std::invalid_argument(
        "ScoringFunction: useGrid requires a ReceptorModel built with a grid");
  }
  if (options_.useGrid && options_.cutoff > 0.0 &&
      receptor_.grid().cellSize() + 1e-12 < options_.cutoff) {
    throw std::invalid_argument(
        "ScoringFunction: grid cell size must be >= cutoff for 27-cell coverage");
  }
  const ForceField& ff = ForceField::standard();
  for (int a = 0; a < chem::kElementCount; ++a) {
    for (int b = 0; b < chem::kElementCount; ++b) {
      ljTable_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          ff.ljPair(static_cast<Element>(a), static_cast<Element>(b));
    }
  }
  hbond_ = ff.hbond();

  // Packed-kernel tables: one pair-parameter row over the cell-sorted
  // receptor per ligand element actually present, plus hoisted per-atom
  // ligand data so the hot loop never touches the Molecule.
  const std::size_t ln = ligand_.atomCount();
  atomRow_.resize(ln);
  ligCharges_.resize(ln);
  ligRoles_.resize(ln);
  ligElems_.resize(ln);
  std::array<int, chem::kElementCount> rowOf;
  rowOf.fill(-1);
  for (std::size_t la = 0; la < ln; ++la) {
    const Element e = ligand_.molecule().element(la);
    int& row = rowOf[static_cast<std::size_t>(e)];
    if (row < 0) {
      row = static_cast<int>(pairRows_.size());
      pairRows_.push_back(ff.pairRows(e, receptor_.packedElements()));
    }
    atomRow_[la] = row;
    ligCharges_[la] = ligand_.molecule().charge(la);
    ligRoles_[la] = ligand_.molecule().hbondRole(la);
    ligElems_[la] = e;
  }
}

ScoreTerms ScoringFunction::pairEnergy(std::size_t ra, std::size_t la, const Vec3& ligandPos,
                                       std::span<const Vec3> allLigandPositions) const {
  ScoreTerms terms;
  const Vec3& rpos = receptor_.positions()[ra];
  const double r = distance(rpos, ligandPos);
  if (options_.cutoff > 0.0 && r > options_.cutoff) return terms;

  const Element re = receptor_.elements()[ra];
  const Element le = ligand_.molecule().element(la);
  const chem::LjParams lj = ljTable_[static_cast<std::size_t>(re)][static_cast<std::size_t>(le)];

  terms.electrostatic =
      electrostaticEnergy(receptor_.charges()[ra], ligand_.molecule().charge(la), r);
  terms.vdw = lennardJonesEnergy(lj.epsilon, lj.sigma, r);

  // Hydrogen bond: donor hydrogen on one side, acceptor on the other.
  const HBondRole rRole = receptor_.roles()[ra];
  const HBondRole lRole = ligand_.molecule().hbondRole(la);
  if (rRole == HBondRole::kDonorHydrogen && lRole == HBondRole::kAcceptor) {
    const Vec3 dir = receptor_.donorDirections()[ra];
    const Vec3 toAcceptor = (ligandPos - rpos).normalized();
    const double cosTheta = dir.norm2() > 0.0 ? dir.dot(toAcceptor) : 1.0;
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  } else if (rRole == HBondRole::kAcceptor && lRole == HBondRole::kDonorHydrogen) {
    const int anchor = ligand_.hydrogenAnchors()[la];
    double cosTheta = 1.0;
    if (anchor >= 0) {
      const Vec3 dir =
          (ligandPos - allLigandPositions[static_cast<std::size_t>(anchor)]).normalized();
      cosTheta = dir.dot((rpos - ligandPos).normalized());
    }
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  }
  return terms;
}

ScoreTerms ScoringFunction::scalarAtomEnergy(std::size_t la, const Vec3& lpos,
                                             std::span<const Vec3> all) const {
  ScoreTerms acc;
  const bool pruned = options_.useGrid && options_.cutoff > 0.0;
  if (pruned) {
    receptor_.grid().forEachNear(lpos,
                                 [&](std::size_t ra) { acc += pairEnergy(ra, la, lpos, all); });
  } else {
    const std::size_t n = receptor_.atomCount();
    for (std::size_t ra = 0; ra < n; ++ra) {
      acc += pairEnergy(ra, la, lpos, all);
    }
  }
  return acc;
}

ScoreTerms ScoringFunction::packedAtomEnergy(std::size_t la, const Vec3& lpos,
                                             std::span<const Vec3> all) const {
  ScoreTerms terms;
  const std::size_t n = receptor_.atomCount();
  if (n == 0) return terms;

  // Candidate ranges over the cell-sorted order: the 27-neighbourhood
  // when grid-pruned, the whole receptor otherwise.
  NeighborGrid::Range ranges[NeighborGrid::kMaxQueryRanges];
  int numRanges;
  if (options_.useGrid && options_.cutoff > 0.0) {
    numRanges = receptor_.grid().queryRanges(lpos, ranges);
  } else {
    ranges[0] = NeighborGrid::Range{0, static_cast<std::uint32_t>(n)};
    numRanges = 1;
  }

  // Pass 1: fused electrostatics + Lennard-Jones over flat SoA arrays.
  // Branch-free: out-of-cutoff lanes contribute an exact 0.0. W
  // independent accumulator lanes keep the reduction vectorisable and
  // deterministic (fixed lane-sum order, independent of thread count).
  const double* X = receptor_.packedX().data();
  const double* Y = receptor_.packedY().data();
  const double* Z = receptor_.packedZ().data();
  const double* Q = receptor_.packedCharges().data();
  const chem::PairRowTable& row = pairRows_[static_cast<std::size_t>(atomRow_[la])];
  const double* EPS = row.epsilon.data();
  const double* SG2 = row.sigma2.data();
  const double lx = lpos.x, ly = lpos.y, lz = lpos.z;
  const double cut2 = options_.cutoff > 0.0 ? options_.cutoff * options_.cutoff
                                            : std::numeric_limits<double>::infinity();
  constexpr double kMinDist2 = kMinPairDistance * kMinPairDistance;

  constexpr int W = 8;
  double elecAcc[W] = {};
  double vdwAcc[W] = {};
  for (int k = 0; k < numRanges; ++k) {
    std::size_t i = ranges[k].first;
    const std::size_t end = i + ranges[k].count;
    for (; i + W <= end; i += W) {
      for (int l = 0; l < W; ++l) {
        const std::size_t j = i + static_cast<std::size_t>(l);
        const double dx = X[j] - lx;
        const double dy = Y[j] - ly;
        const double dz = Z[j] - lz;
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double in = r2 <= cut2 ? 1.0 : 0.0;
        const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
        const double rinv = 1.0 / std::sqrt(r2c);
        const double s2 = SG2[j] * (rinv * rinv);
        const double s6 = s2 * s2 * s2;
        elecAcc[l] += in * (Q[j] * rinv);
        vdwAcc[l] += in * (EPS[j] * (s6 * s6 - s6));
      }
    }
    for (; i < end; ++i) {
      const double dx = X[i] - lx;
      const double dy = Y[i] - ly;
      const double dz = Z[i] - lz;
      const double r2 = dx * dx + dy * dy + dz * dz;
      const double in = r2 <= cut2 ? 1.0 : 0.0;
      const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
      const double rinv = 1.0 / std::sqrt(r2c);
      const double s2 = SG2[i] * (rinv * rinv);
      const double s6 = s2 * s2 * s2;
      elecAcc[0] += in * (Q[i] * rinv);
      vdwAcc[0] += in * (EPS[i] * (s6 * s6 - s6));
    }
  }
  double elec = 0.0, vdw = 0.0;
  for (int l = 0; l < W; ++l) {
    elec += elecAcc[l];
    vdw += vdwAcc[l];
  }
  terms.electrostatic = chem::kCoulomb * ligCharges_[la] * elec;
  terms.vdw = 4.0 * vdw;

  // Pass 2: hydrogen bond over the sparse packed site lists (donor
  // hydrogen on one side, acceptor on the other), hoisted out of the hot
  // loop. The cutoff test mirrors the scalar path exactly; with a grid,
  // every in-cutoff site is inside the 27-neighbourhood by construction
  // (cell size >= cutoff), so scanning the full list loses nothing.
  const HBondRole lRole = ligRoles_[la];
  if (lRole == HBondRole::kAcceptor) {
    const Element le = ligElems_[la];
    for (const ReceptorModel::HBondSite& d : receptor_.donorHydrogenSites()) {
      const double r = distance(d.pos, lpos);
      if (options_.cutoff > 0.0 && r > options_.cutoff) continue;
      const chem::LjParams lj =
          ljTable_[static_cast<std::size_t>(d.element)][static_cast<std::size_t>(le)];
      const Vec3 toAcceptor = (lpos - d.pos).normalized();
      const double cosTheta = d.donorDir.norm2() > 0.0 ? d.donorDir.dot(toAcceptor) : 1.0;
      terms.hbond += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
    }
  } else if (lRole == HBondRole::kDonorHydrogen) {
    const Element le = ligElems_[la];
    const int anchor = ligand_.hydrogenAnchors()[la];
    for (const ReceptorModel::HBondSite& a : receptor_.acceptorSites()) {
      const double r = distance(a.pos, lpos);
      if (options_.cutoff > 0.0 && r > options_.cutoff) continue;
      const chem::LjParams lj =
          ljTable_[static_cast<std::size_t>(a.element)][static_cast<std::size_t>(le)];
      double cosTheta = 1.0;
      if (anchor >= 0) {
        const Vec3 dir = (lpos - all[static_cast<std::size_t>(anchor)]).normalized();
        cosTheta = dir.dot((a.pos - lpos).normalized());
      }
      terms.hbond += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
    }
  }
  return terms;
}

ScoreTerms ScoringFunction::atomEnergy(std::size_t la, const Vec3& lpos,
                                       std::span<const Vec3> all) const {
  return options_.packed ? packedAtomEnergy(la, lpos, all) : scalarAtomEnergy(la, lpos, all);
}

ScoreTerms ScoringFunction::energy(std::span<const Vec3> ligandPositions) const {
  if (ligandPositions.size() != ligand_.atomCount()) {
    throw std::invalid_argument("ScoringFunction::energy: ligand position count mismatch");
  }
  const std::size_t n = ligandPositions.size();
  if (options_.pool == nullptr || n < 8) {
    ScoreTerms acc;
    for (std::size_t la = 0; la < n; ++la) {
      acc += atomEnergy(la, ligandPositions[la], ligandPositions);
    }
    return acc;
  }
  // Ordered per-atom partials: each atom's terms are computed exactly as
  // in the serial path and summed in atom order afterwards, so the result
  // is bit-identical for any thread count (and to the serial path) —
  // unlike the old mutex-ordered chunk accumulation.
  std::vector<ScoreTerms> partials(n);
  options_.pool->parallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t la = lo; la < hi; ++la) {
      partials[la] = atomEnergy(la, ligandPositions[la], ligandPositions);
    }
  });
  ScoreTerms acc;
  for (const ScoreTerms& p : partials) acc += p;
  return acc;
}

double ScoringFunction::score(std::span<const Vec3> ligandPositions) const {
  return -energy(ligandPositions).total();
}

double ScoringFunction::scorePose(const Pose& pose, std::vector<Vec3>& scratch) const {
  ligand_.applyPose(pose, scratch);
  return score(scratch);
}

double ScoringFunction::scorePose(const Pose& pose) const {
  std::vector<Vec3> scratch;
  return scorePose(pose, scratch);
}

}  // namespace dqndock::metadock
