#include "src/metadock/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

namespace dqndock::metadock {

using chem::Element;
using chem::ForceField;
using chem::HBondRole;

double electrostaticEnergy(double qi, double qj, double r) {
  return chem::kCoulomb * qi * qj / std::max(r, kMinPairDistance);
}

double lennardJonesEnergy(double epsilon, double sigma, double r) {
  const double inv = sigma / std::max(r, kMinPairDistance);
  const double inv2 = inv * inv;
  const double inv6 = inv2 * inv2 * inv2;
  return 4.0 * epsilon * (inv6 * inv6 - inv6);
}

double hbondEnergy(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                   double cosTheta) {
  const double rc = std::max(r, kMinPairDistance);
  // cos(theta) gates the directional 12-10 well; the off-axis remainder
  // sin(theta) falls back to the plain Lennard-Jones shape (Eq. 1).
  const double c = std::clamp(cosTheta, 0.0, 1.0);
  const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double r2 = rc * rc;
  const double r10 = r2 * r2 * r2 * r2 * r2;
  const double r12 = r10 * r2;
  return c * (hb.c12 / r12 - hb.d10 / r10) + s * lennardJonesEnergy(epsilon, sigma, rc);
}

ScoringFunction::ScoringFunction(const ReceptorModel& receptor, const LigandModel& ligand,
                                 ScoringOptions options)
    : receptor_(receptor), ligand_(ligand), options_(options) {
  if (options_.useGrid && options_.cutoff > 0.0 && !receptor_.hasGrid()) {
    throw std::invalid_argument(
        "ScoringFunction: useGrid requires a ReceptorModel built with a grid");
  }
  if (options_.useGrid && options_.cutoff > 0.0 &&
      receptor_.grid().cellSize() + 1e-12 < options_.cutoff) {
    throw std::invalid_argument(
        "ScoringFunction: grid cell size must be >= cutoff for 27-cell coverage");
  }
  const ForceField& ff = ForceField::standard();
  for (int a = 0; a < chem::kElementCount; ++a) {
    for (int b = 0; b < chem::kElementCount; ++b) {
      ljTable_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          ff.ljPair(static_cast<Element>(a), static_cast<Element>(b));
    }
  }
  hbond_ = ff.hbond();
}

ScoreTerms ScoringFunction::pairEnergy(std::size_t ra, std::size_t la, const Vec3& ligandPos,
                                       std::span<const Vec3> allLigandPositions) const {
  ScoreTerms terms;
  const Vec3& rpos = receptor_.positions()[ra];
  const double r = distance(rpos, ligandPos);
  if (options_.cutoff > 0.0 && r > options_.cutoff) return terms;

  const Element re = receptor_.elements()[ra];
  const Element le = ligand_.molecule().element(la);
  const chem::LjParams lj = ljTable_[static_cast<std::size_t>(re)][static_cast<std::size_t>(le)];

  terms.electrostatic =
      electrostaticEnergy(receptor_.charges()[ra], ligand_.molecule().charge(la), r);
  terms.vdw = lennardJonesEnergy(lj.epsilon, lj.sigma, r);

  // Hydrogen bond: donor hydrogen on one side, acceptor on the other.
  const HBondRole rRole = receptor_.roles()[ra];
  const HBondRole lRole = ligand_.molecule().hbondRole(la);
  if (rRole == HBondRole::kDonorHydrogen && lRole == HBondRole::kAcceptor) {
    const Vec3 dir = receptor_.donorDirections()[ra];
    const Vec3 toAcceptor = (ligandPos - rpos).normalized();
    const double cosTheta = dir.norm2() > 0.0 ? dir.dot(toAcceptor) : 1.0;
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  } else if (rRole == HBondRole::kAcceptor && lRole == HBondRole::kDonorHydrogen) {
    const int anchor = ligand_.hydrogenAnchors()[la];
    double cosTheta = 1.0;
    if (anchor >= 0) {
      const Vec3 dir =
          (ligandPos - allLigandPositions[static_cast<std::size_t>(anchor)]).normalized();
      cosTheta = dir.dot((rpos - ligandPos).normalized());
    }
    terms.hbond = hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
  }
  return terms;
}

ScoreTerms ScoringFunction::energyForLigandRange(std::span<const Vec3> ligandPositions,
                                                 std::size_t begin, std::size_t end) const {
  ScoreTerms acc;
  const bool pruned = options_.useGrid && options_.cutoff > 0.0;
  for (std::size_t la = begin; la < end; ++la) {
    const Vec3& lpos = ligandPositions[la];
    if (pruned) {
      receptor_.grid().forEachNear(lpos, [&](std::size_t ra) {
        acc += pairEnergy(ra, la, lpos, ligandPositions);
      });
    } else {
      const std::size_t n = receptor_.atomCount();
      for (std::size_t ra = 0; ra < n; ++ra) {
        acc += pairEnergy(ra, la, lpos, ligandPositions);
      }
    }
  }
  return acc;
}

ScoreTerms ScoringFunction::energy(std::span<const Vec3> ligandPositions) const {
  if (ligandPositions.size() != ligand_.atomCount()) {
    throw std::invalid_argument("ScoringFunction::energy: ligand position count mismatch");
  }
  const std::size_t n = ligandPositions.size();
  if (options_.pool == nullptr || n < 8) {
    return energyForLigandRange(ligandPositions, 0, n);
  }
  ScoreTerms total;
  std::mutex mu;
  options_.pool->parallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    const ScoreTerms part = energyForLigandRange(ligandPositions, lo, hi);
    std::lock_guard lock(mu);
    total += part;
  });
  return total;
}

double ScoringFunction::score(std::span<const Vec3> ligandPositions) const {
  return -energy(ligandPositions).total();
}

double ScoringFunction::scorePose(const Pose& pose, std::vector<Vec3>& scratch) const {
  ligand_.applyPose(pose, scratch);
  return score(scratch);
}

double ScoringFunction::scorePose(const Pose& pose) const {
  std::vector<Vec3> scratch;
  return scorePose(pose, scratch);
}

}  // namespace dqndock::metadock
