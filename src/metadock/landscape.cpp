#include "src/metadock/landscape.hpp"

#include <stdexcept>

#include "src/common/csv.hpp"

namespace dqndock::metadock {

namespace {
LandscapeSample sampleAt(const ScoringFunction& scoring, const Vec3& position, double t, double u,
                         std::vector<Vec3>& scratch) {
  Pose pose(scoring.ligand().torsionCount());
  pose.translation = position;
  LandscapeSample sample;
  sample.t = t;
  sample.u = u;
  sample.position = position;
  sample.score = scoring.scorePose(pose, scratch);
  return sample;
}
}  // namespace

std::vector<LandscapeSample> profileLine(const ScoringFunction& scoring, const Vec3& origin,
                                         const Vec3& direction, double t0, double t1,
                                         std::size_t samples) {
  if (samples < 2) throw std::invalid_argument("profileLine: need at least 2 samples");
  const Vec3 dir = direction.normalized();
  if (dir.norm2() == 0.0) throw std::invalid_argument("profileLine: zero direction");
  std::vector<LandscapeSample> out;
  out.reserve(samples);
  std::vector<Vec3> scratch;
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(samples - 1);
    out.push_back(sampleAt(scoring, origin + dir * t, t, 0.0, scratch));
  }
  return out;
}

std::vector<LandscapeSample> profilePlane(const ScoringFunction& scoring, const Vec3& center,
                                          const Vec3& axisU, const Vec3& axisV, double extentU,
                                          double extentV, std::size_t samplesU,
                                          std::size_t samplesV) {
  if (samplesU < 2 || samplesV < 2) {
    throw std::invalid_argument("profilePlane: need at least 2 samples per axis");
  }
  const Vec3 u = axisU.normalized();
  const Vec3 v = axisV.normalized();
  if (u.norm2() == 0.0 || v.norm2() == 0.0) {
    throw std::invalid_argument("profilePlane: zero axis");
  }
  std::vector<LandscapeSample> out;
  out.reserve(samplesU * samplesV);
  std::vector<Vec3> scratch;
  for (std::size_t i = 0; i < samplesU; ++i) {
    const double tu =
        -extentU + 2.0 * extentU * static_cast<double>(i) / static_cast<double>(samplesU - 1);
    for (std::size_t j = 0; j < samplesV; ++j) {
      const double tv =
          -extentV + 2.0 * extentV * static_cast<double>(j) / static_cast<double>(samplesV - 1);
      out.push_back(sampleAt(scoring, center + u * tu + v * tv, tu, tv, scratch));
    }
  }
  return out;
}

void writeLandscapeCsv(const std::string& path, const std::vector<LandscapeSample>& samples) {
  CsvWriter csv(path, {"t", "u", "x", "y", "z", "score"});
  for (const auto& s : samples) {
    csv.row({s.t, s.u, s.position.x, s.position.y, s.position.z, s.score});
  }
}

}  // namespace dqndock::metadock
