#pragma once

/// \file tempering.hpp
/// Parallel tempering (replica exchange) docking.
///
/// Runs K Monte Carlo chains at a geometric ladder of temperatures; hot
/// chains cross score barriers, cold chains refine, and periodic
/// Metropolis swaps between adjacent temperatures let good poses migrate
/// down the ladder. A classic HPC-friendly sampler (replicas are
/// independent between swaps, so they parallelise across the pool) that
/// complements the METADOCK schema's single-temperature annealing.

#include "src/metadock/evaluator.hpp"
#include "src/metadock/metaheuristic.hpp"  // Candidate

namespace dqndock::metadock {

struct TemperingParams {
  std::size_t replicas = 6;
  double temperatureMin = 1.0;
  double temperatureMax = 200.0;   ///< geometric ladder between min/max
  std::size_t stepsPerRound = 10;  ///< MC steps per replica between swaps
  std::size_t maxEvaluations = 20000;
  double mutationTranslation = 1.0;
  double mutationRotationDeg = 10.0;
  double mutationTorsionDeg = 15.0;
  double searchRadius = 0.0;       ///< 0 = auto (receptor bounding radius + 10)
};

struct TemperingResult {
  Candidate best;
  std::size_t evaluations = 0;
  std::size_t rounds = 0;
  std::size_t swapsAccepted = 0;
  std::size_t swapsProposed = 0;
  std::vector<double> history;  ///< best score after each round
};

class ParallelTempering {
 public:
  ParallelTempering(PoseEvaluator& evaluator, TemperingParams params);

  /// Deterministic in `rng` (replica streams are split off it).
  TemperingResult run(Rng& rng);
  TemperingResult runFrom(const Pose& start, Rng& rng);

  /// The temperature ladder actually used (geometric).
  const std::vector<double>& ladder() const { return ladder_; }

 private:
  PoseEvaluator& evaluator_;
  TemperingParams params_;
  std::vector<double> ladder_;
  std::size_t torsionCount_ = 0;
};

}  // namespace dqndock::metadock
