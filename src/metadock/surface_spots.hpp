#pragma once

/// \file surface_spots.hpp
/// Receptor surface-spot decomposition (paper Section 2.1: BINDSURF and
/// METADOCK "divide the whole protein surface into independent regions or
/// spots" and dock into each in parallel — blind docking without knowing
/// the binding site).
///
/// Surface detection uses a neighbour-count criterion (atoms with few
/// neighbours inside a probe radius are exposed), and spots are formed by
/// greedy leader clustering of the exposed atoms. Each spot yields a
/// search box; `dockAllSpots` then runs one metaheuristic per spot across
/// the thread pool and ranks the spots by their best score — the
/// METADOCK screening topology.

#include <vector>

#include "src/metadock/metaheuristic.hpp"

namespace dqndock::metadock {

struct SurfaceSpotOptions {
  /// An atom is "exposed" when fewer than this many other receptor atoms
  /// lie within probeRadius.
  double probeRadius = 5.0;
  std::size_t buriedNeighborCount = 28;
  /// Exposed atoms within this distance of a spot centre join that spot.
  double spotRadius = 8.0;
  /// Spots with fewer exposed atoms than this are dropped (noise).
  std::size_t minSpotAtoms = 4;
};

struct SurfaceSpot {
  Vec3 center;                    ///< mean position of the spot's atoms
  std::vector<std::size_t> atoms; ///< exposed receptor atom indices
  double radius = 0.0;            ///< max distance of a member from the centre
};

/// Identify exposed receptor atoms. Returns one flag per atom.
std::vector<char> surfaceAtoms(const ReceptorModel& receptor, const SurfaceSpotOptions& opts = {});

/// Decompose the receptor surface into spots (sorted by size, largest
/// first).
std::vector<SurfaceSpot> findSurfaceSpots(const ReceptorModel& receptor,
                                          const SurfaceSpotOptions& opts = {});

/// Result of docking into one spot.
struct SpotDockingResult {
  SurfaceSpot spot;
  Candidate best;
  std::size_t evaluations = 0;
};

/// Blind docking: run the given metaheuristic independently inside every
/// spot (search box centred on the spot), in parallel across `pool`.
/// Results are sorted by best score, descending. Deterministic in `seed`
/// (each spot gets an independent split of the root stream).
std::vector<SpotDockingResult> dockAllSpots(const ScoringFunction& scoring,
                                            const std::vector<SurfaceSpot>& spots,
                                            MetaheuristicParams params, std::uint64_t seed,
                                            ThreadPool* pool);

}  // namespace dqndock::metadock
