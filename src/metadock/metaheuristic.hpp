#pragma once

/// \file metaheuristic.hpp
/// METADOCK's parameterised metaheuristic schema [Imbernón et al. 2017].
///
/// METADOCK expresses a family of population-based optimisers as one
/// schema whose stages are tuned by numeric parameters:
///
///   Initialize -> while !End { Select -> Combine -> Improve -> Include }
///
/// Choosing the parameters instantiates classic algorithms: a population
/// of 1 with annealed improvement is Monte Carlo / simulated annealing; a
/// large population with crossover is a genetic algorithm; no combination
/// and greedy improvement is multi-start local search; improvement only
/// at temperature infinity is pure random search. All instantiations
/// share the thread-pool pose evaluator, matching the paper's claim that
/// "several heuristic strategies can be applied" on the same engine.

#include <functional>
#include <string>
#include <vector>

#include "src/metadock/evaluator.hpp"

namespace dqndock::metadock {

/// Numeric knobs of the schema (the "parameterised" part of METADOCK).
struct MetaheuristicParams {
  std::string name = "custom";

  std::size_t populationSize = 32;   ///< candidates kept between iterations
  std::size_t selectBest = 8;        ///< elite candidates selected per iteration
  std::size_t selectRandom = 4;      ///< diversity candidates selected per iteration
  std::size_t offspringPerPair = 2;  ///< crossover children per selected pair (0 = no Combine)
  std::size_t improveSteps = 4;      ///< mutation/annealing steps per candidate (0 = no Improve)

  double mutationTranslation = 1.0;  ///< Angstrom stddev of Improve moves
  double mutationRotationDeg = 10.0; ///< degrees stddev of Improve moves
  double mutationTorsionDeg = 15.0;  ///< degrees stddev of Improve moves

  /// Metropolis temperature for Improve: <=0 accepts only improvements
  /// (greedy local search); >0 accepts worse poses with
  /// exp(delta/T) probability; cooled by `cooling` each iteration.
  double temperature = 0.0;
  double cooling = 0.97;

  /// End condition: stop after this many scoring-function evaluations.
  std::size_t maxEvaluations = 20000;

  /// Box half-extent around the search centre that Initialize samples
  /// translations from; 0 = auto (receptor bounding radius + 10 A).
  double searchRadius = 0.0;
  /// Optional search centre override (surface-spot docking searches a
  /// box around the spot instead of the whole receptor).
  bool useSearchCenter = false;
  Vec3 searchCenter;

  // ---- Named instantiations of the schema ------------------------------
  static MetaheuristicParams randomSearch();
  static MetaheuristicParams localSearch();
  static MetaheuristicParams monteCarlo();  ///< simulated annealing chain
  static MetaheuristicParams genetic();
};

/// One candidate solution.
struct Candidate {
  Pose pose;
  double score = -1e300;
};

/// Outcome of a run.
struct MetaheuristicResult {
  Candidate best;
  std::size_t evaluations = 0;
  std::size_t iterations = 0;
  /// Best score after each schema iteration (convergence curve).
  std::vector<double> history;
};

class MetaheuristicEngine {
 public:
  /// The engine evaluates candidates through `evaluator` (which carries
  /// the thread pool) against the scoring function it wraps.
  MetaheuristicEngine(PoseEvaluator& evaluator, MetaheuristicParams params);

  /// Run the schema with a fully random initial population.
  /// Deterministic in `rng`.
  MetaheuristicResult run(Rng& rng);

  /// Run the schema seeded with a starting pose (e.g. the RL initial
  /// state, so baselines and DQN-Docking face the same problem).
  MetaheuristicResult runFrom(const Pose& start, Rng& rng);

  const MetaheuristicParams& params() const { return params_; }

 private:
  MetaheuristicResult runImpl(const Pose* start, Rng& rng);
  std::vector<Candidate> initialize(const Pose* start, Rng& rng);
  std::vector<std::size_t> select(const std::vector<Candidate>& population, Rng& rng) const;
  std::vector<Pose> combine(const std::vector<Candidate>& population,
                            const std::vector<std::size_t>& selected, Rng& rng) const;
  void improve(std::vector<Candidate>& candidates, double temperature, Rng& rng);
  void include(std::vector<Candidate>& population, std::vector<Candidate>&& newcomers) const;

  PoseEvaluator& evaluator_;
  MetaheuristicParams params_;
  std::size_t torsionCount_ = 0;
};

/// Crossover of two poses: per-component uniform mix of translations,
/// normalized quaternion blend, per-torsion pick. Exposed for testing.
Pose crossoverPoses(const Pose& a, const Pose& b, Rng& rng);

}  // namespace dqndock::metadock
