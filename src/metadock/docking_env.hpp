#pragma once

/// \file docking_env.hpp
/// The METADOCK-backed reinforcement-learning environment of DQN-Docking
/// (paper Section 3). The agent is the ligand; an action is a fixed-size
/// translation/rotation (optionally a torsion twist for flexible
/// ligands); the environment applies it, rescores the complex, and
/// reports reward = clip(sign(delta score)) plus the termination rules
/// the authors added on top of METADOCK:
///   * boundary: the ligand may wander at most an extra third beyond the
///     initial receptor-ligand center-of-mass distance;
///   * score floor: 20 consecutive scores below -100,000 (deep steric
///     penetration) terminate the episode;
///   * time limit: T = 1,000 steps.

#include <memory>
#include <optional>

#include "src/chem/synthetic.hpp"
#include "src/metadock/evaluator.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

/// Why an episode ended.
enum class Termination : unsigned char {
  kNone = 0,    ///< episode still running
  kBoundary,    ///< ligand left the allowed movement area
  kScoreFloor,  ///< sustained deep-clash scores
  kTimeLimit,   ///< step budget exhausted
  kSuccess,     ///< crystallographic spot reached (optional rule)
};

const char* terminationName(Termination t);

/// Reward construction from the METADOCK score (paper Section 3 discusses
/// this design decision at length).
enum class RewardMode : unsigned char {
  /// The paper's choice: reward = sign(delta score) in {-1, 0, +1}
  /// ("we keep fixed all the positive rewards to be 1 and all the
  /// negative rewards to be -1").
  kSignClip = 0,
  /// Raw score change (unclipped; exposes the huge clash magnitudes).
  kRawDelta,
  /// Score change clipped to [-1, 1] without the fixed-magnitude snap.
  kClippedDelta,
  /// Absolute score scaled by `rewardScale` (what Atari-style cumulative
  /// scores would look like; included for the ablation).
  kAbsolute,
};

const char* rewardModeName(RewardMode m);

struct EnvConfig {
  /// Translation per shift action, in length units (paper Table 1: 1).
  double shiftStep = 1.0;
  /// Rotation per rotate action, degrees (paper Table 1: 0.5).
  double rotateStepDeg = 0.5;
  /// Enable torsion actions: one extra action per rotatable bond
  /// (paper Section 5: 2BSM ligand folds in 6 bonds -> 18 actions).
  bool flexibleLigand = false;
  /// Torsion twist per flexible action, degrees.
  double torsionStepDeg = 5.0;
  /// Maximum steps per episode (paper Table 1: T = 1,000).
  int maxSteps = 1000;
  /// Movement area: initial COM distance times this factor
  /// (paper Section 3: an additional third -> 4/3).
  double boundaryFactor = 4.0 / 3.0;
  /// Episode ends after `floorPatience` consecutive scores below
  /// `scoreFloor` (paper Section 3: 20 steps below -100,000).
  double scoreFloor = -100000.0;
  int floorPatience = 20;
  /// Reward construction (paper default: sign-clipped score change).
  RewardMode rewardMode = RewardMode::kSignClip;
  /// Scale for RewardMode::kAbsolute.
  double rewardScale = 1e-3;
  /// Optional success rule: terminate (Termination::kSuccess) with
  /// `successReward` when the ligand comes within `successRmsd` Angstrom
  /// of the crystallographic pose — "discover the crystallographic
  /// solution" is the paper's stated training goal. 0 disables the rule
  /// (the paper's configuration: METADOCK has no such stop condition).
  double successRmsd = 0.0;
  double successReward = 10.0;
  /// Scoring configuration (cutoff, grid, thread pool).
  ScoringOptions scoring;
};

struct StepResult {
  double score = 0.0;        ///< absolute METADOCK score of the new pose
  double scoreDelta = 0.0;   ///< raw change in score
  double reward = 0.0;       ///< clipped reward in {-1, 0, +1}
  bool terminal = false;
  Termination reason = Termination::kNone;
};

/// Action encoding: 0..5 = translate -x,+x,-y,+y,-z,+z; 6..11 = rotate
/// about x,y,z (negative then positive); 12.. = +torsion twist per
/// rotatable bond (flexible mode only).
class DockingEnv {
 public:
  DockingEnv(const chem::Scenario& scenario, EnvConfig config = {});

  int actionCount() const;

  /// Reset the ligand to the scenario's initial pose; returns the score
  /// of that pose.
  double reset();

  /// Apply one action. Calling step() on a terminated episode throws.
  StepResult step(int action);

  /// The pose `action` would move the ligand to, without applying or
  /// scoring it. Same validation as step(). The vectorized training path
  /// gathers one candidate pose per env and scores the whole population
  /// in a single batched receptor sweep before committing each env via
  /// stepScored().
  Pose candidatePose(int action) const;

  /// Commit a candidate pose whose score was already computed (e.g. by
  /// ScoringFunction::scoreBatch across many envs). Runs exactly the
  /// reward/termination bookkeeping of step(); step(a) is equivalent to
  /// stepScored(candidatePose(a), evaluate(candidatePose(a))).
  StepResult stepScored(const Pose& next, double score);

  // -- Observation accessors (consumed by the state encoders) ------------
  const Pose& pose() const { return pose_; }
  std::span<const Vec3> ligandPositions() const { return positions_; }
  double score() const { return score_; }
  int stepCount() const { return steps_; }
  bool terminated() const { return lastReason_ != Termination::kNone; }
  Termination terminationReason() const { return lastReason_; }

  const ReceptorModel& receptor() const { return receptor_; }
  const LigandModel& ligand() const { return ligand_; }
  const ScoringFunction& scoring() const { return *scoring_; }
  const chem::Scenario& scenario() const { return scenario_; }

  /// Total scoring-function invocations across all episodes.
  std::size_t evaluationCount() const { return evaluator_->evaluationCount(); }

  /// RMSD of the current ligand coordinates to the crystallographic pose.
  double rmsdToCrystal() const;

  /// Score of the crystallographic (solution) pose.
  double crystalScore() const;

  /// Restore an arbitrary pose (used by the compact replay buffer to
  /// re-materialise stored states). Does not alter episode counters.
  void setPose(const Pose& pose);

 private:

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
  std::unique_ptr<ScoringFunction> scoring_;
  std::unique_ptr<PoseEvaluator> evaluator_;
  EnvConfig config_;

  Pose initialPose_;
  double initialComDistance_ = 0.0;

  Pose pose_;
  std::vector<Vec3> positions_;
  double score_ = 0.0;
  int steps_ = 0;
  int floorStreak_ = 0;
  Termination lastReason_ = Termination::kNone;
};

}  // namespace dqndock::metadock
