#pragma once

/// \file pose_cluster.hpp
/// RMSD-based pose clustering. Docking runs end with a population of
/// candidate poses; engines report *distinct binding modes* by greedily
/// clustering the score-sorted poses with an RMSD threshold (the
/// AutoDock convention, typically 2 A). Used by the virtual-screening
/// example and the baselines bench to summarise metaheuristic output.

#include <vector>

#include "src/metadock/ligand_model.hpp"
#include "src/metadock/metaheuristic.hpp"

namespace dqndock::metadock {

struct PoseCluster {
  Candidate representative;       ///< best-scoring member
  std::vector<std::size_t> members;  ///< indices into the input list
};

struct ClusterOptions {
  double rmsdThreshold = 2.0;  ///< Angstrom; join a cluster if within this
  /// Use optimal-superposition RMSD (binding *mode*) instead of direct
  /// index-wise RMSD (absolute placement).
  bool aligned = false;
};

/// Greedy leader clustering: sort candidates by score (best first); each
/// candidate joins the first existing cluster whose representative is
/// within the threshold, else founds a new cluster. Returns clusters in
/// representative-score order.
std::vector<PoseCluster> clusterPoses(const LigandModel& ligand,
                                      std::span<const Candidate> candidates,
                                      ClusterOptions options = {});

/// Pairwise ligand-conformation RMSD under two poses.
double poseRmsd(const LigandModel& ligand, const Pose& a, const Pose& b, bool aligned = false);

}  // namespace dqndock::metadock
