#include "src/metadock/forces.hpp"

#include <algorithm>
#include <cmath>

namespace dqndock::metadock {

using chem::Element;
using chem::HBondRole;

double electrostaticForceDr(double qi, double qj, double r) {
  const double rc = std::max(r, kMinPairDistance);
  // E = k q q / r  =>  dE/dr = -k q q / r^2 (zero inside the clamp).
  if (r < kMinPairDistance) return 0.0;
  return -chem::kCoulomb * qi * qj / (rc * rc);
}

double lennardJonesForceDr(double epsilon, double sigma, double r) {
  if (r < kMinPairDistance) return 0.0;
  const double inv = sigma / r;
  const double inv2 = inv * inv;
  const double inv6 = inv2 * inv2 * inv2;
  // E = 4 eps (x^12 - x^6), x = sigma/r  =>  dE/dr = 4 eps (-12 x^12 + 6 x^6) / r.
  return 4.0 * epsilon * (-12.0 * inv6 * inv6 + 6.0 * inv6) / r;
}

double hbondForceDr(const chem::HBondParams& hb, double epsilon, double sigma, double r,
                    double cosTheta) {
  if (r < kMinPairDistance) return 0.0;
  const double c = std::clamp(cosTheta, 0.0, 1.0);
  const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double r2 = r * r;
  const double r10 = r2 * r2 * r2 * r2 * r2;
  const double r12 = r10 * r2;
  // d/dr [ c (C/r^12 - D/r^10) ] = c (-12 C / r^13 + 10 D / r^11)
  const double radial = c * (-12.0 * hb.c12 / (r12 * r) + 10.0 * hb.d10 / (r10 * r));
  return radial + s * lennardJonesForceDr(epsilon, sigma, r);
}

ScoringGradient::ScoringGradient(const ReceptorModel& receptor, const LigandModel& ligand,
                                 ScoringOptions options)
    : receptor_(receptor), ligand_(ligand), options_(options) {
  if (options_.useGrid && options_.cutoff > 0.0 && !receptor_.hasGrid()) {
    throw std::invalid_argument(
        "ScoringGradient: useGrid requires a ReceptorModel built with a grid");
  }
  const chem::ForceField& ff = chem::ForceField::standard();
  for (int a = 0; a < chem::kElementCount; ++a) {
    for (int b = 0; b < chem::kElementCount; ++b) {
      ljTable_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          ff.ljPair(static_cast<Element>(a), static_cast<Element>(b));
    }
  }
  hbond_ = ff.hbond();
}

double ScoringGradient::atomGradients(std::span<const Vec3> ligandPositions,
                                      std::vector<Vec3>& gradients) const {
  if (ligandPositions.size() != ligand_.atomCount()) {
    throw std::invalid_argument("ScoringGradient: ligand position count mismatch");
  }
  gradients.assign(ligandPositions.size(), Vec3{});
  double energy = 0.0;

  const bool pruned = options_.useGrid && options_.cutoff > 0.0;
  const chem::Molecule& mol = ligand_.molecule();

  for (std::size_t la = 0; la < ligandPositions.size(); ++la) {
    const Vec3& lpos = ligandPositions[la];
    const Element le = mol.element(la);
    const double lq = mol.charge(la);
    const HBondRole lRole = mol.hbondRole(la);

    auto accumulate = [&](std::size_t ra) {
      const Vec3& rpos = receptor_.positions()[ra];
      const Vec3 d = lpos - rpos;
      const double r = d.norm();
      if (options_.cutoff > 0.0 && r > options_.cutoff) return;
      const Element re = receptor_.elements()[ra];
      const chem::LjParams lj =
          ljTable_[static_cast<std::size_t>(re)][static_cast<std::size_t>(le)];
      const double rq = receptor_.charges()[ra];

      energy += electrostaticEnergy(rq, lq, r) + lennardJonesEnergy(lj.epsilon, lj.sigma, r);
      double dEdr = electrostaticForceDr(rq, lq, r) + lennardJonesForceDr(lj.epsilon, lj.sigma, r);

      const HBondRole rRole = receptor_.roles()[ra];
      if (rRole == HBondRole::kDonorHydrogen && lRole == HBondRole::kAcceptor) {
        const Vec3 dir = receptor_.donorDirections()[ra];
        const double cosTheta =
            dir.norm2() > 0.0 ? dir.dot((lpos - rpos).normalized()) : 1.0;
        energy += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
        dEdr += hbondForceDr(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
      } else if (rRole == HBondRole::kAcceptor && lRole == HBondRole::kDonorHydrogen) {
        const int anchor = ligand_.hydrogenAnchors()[la];
        double cosTheta = 1.0;
        if (anchor >= 0) {
          const Vec3 dir =
              (lpos - ligandPositions[static_cast<std::size_t>(anchor)]).normalized();
          cosTheta = dir.dot((rpos - lpos).normalized());
        }
        energy += hbondEnergy(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
        dEdr += hbondForceDr(hbond_, lj.epsilon, lj.sigma, r, cosTheta);
      }

      if (r > kMinPairDistance) {
        gradients[la] += d * (dEdr / r);
      }
    };

    if (pruned) {
      receptor_.grid().forEachNear(lpos, accumulate);
    } else {
      for (std::size_t ra = 0; ra < receptor_.atomCount(); ++ra) accumulate(ra);
    }
  }
  return energy;
}

RigidBodyForce ScoringGradient::rigidBodyForce(std::span<const Vec3> ligandPositions) const {
  std::vector<Vec3> gradients;
  RigidBodyForce out;
  out.energy = atomGradients(ligandPositions, gradients);

  Vec3 centroid;
  for (const auto& p : ligandPositions) centroid += p;
  centroid /= static_cast<double>(ligandPositions.size());

  for (std::size_t i = 0; i < ligandPositions.size(); ++i) {
    const Vec3 f = -gradients[i];  // force = -dE/dx
    out.force += f;
    out.torque += (ligandPositions[i] - centroid).cross(f);
  }
  return out;
}

MinimizeResult minimizePose(const ScoringFunction& scoring, const ScoringGradient& gradient,
                            const Pose& start, MinimizeOptions options) {
  MinimizeResult result;
  result.pose = start;
  std::vector<Vec3> positions;
  result.initialScore = scoring.scorePose(result.pose, positions);
  double score = result.initialScore;

  double step = options.initialStep;
  double rotStep = options.initialRotStep;

  for (int it = 0; it < options.maxIterations; ++it) {
    ++result.iterations;
    scoring.ligand().applyPose(result.pose, positions);
    const RigidBodyForce rb = gradient.rigidBodyForce(positions);

    const Vec3 moveDir = rb.force.normalized();
    const Vec3 spinAxis = rb.torque.normalized();
    const double spinMag = rb.torque.norm();

    Pose trial = result.pose;
    trial.translation += moveDir * step;
    if (spinMag > 1e-12) {
      trial.orientation =
          (Quat::fromAxisAngle(spinAxis, rotStep) * trial.orientation).normalized();
    }
    const double trialScore = scoring.scorePose(trial, positions);
    if (trialScore > score) {
      result.pose = trial;
      score = trialScore;
      step *= options.grow;
      rotStep *= options.grow;
    } else {
      step *= options.shrink;
      rotStep *= options.shrink;
      if (step < options.minStep && rotStep < options.minStep) {
        result.converged = true;
        break;
      }
    }

    // Optional torsional descent: try +/- torsionStep on each DOF.
    if (options.refineTorsions) {
      for (std::size_t k = 0; k < result.pose.torsions.size(); ++k) {
        for (const double sign : {+1.0, -1.0}) {
          Pose twisted = result.pose;
          twisted.torsions[k] =
              std::remainder(twisted.torsions[k] + sign * options.torsionStep, 2.0 * M_PI);
          const double twistedScore = scoring.scorePose(twisted, positions);
          if (twistedScore > score) {
            result.pose = twisted;
            score = twistedScore;
            break;
          }
        }
      }
    }
  }
  result.finalScore = score;
  return result;
}

}  // namespace dqndock::metadock
