/// \file scoring_kernel_avx512.cpp
/// AVX-512F tier of the Eq. 1 sweep kernels. This translation unit is
/// compiled with an explicit `-mavx512f` (plus the shared kernel flags) —
/// NOT gated on `-march=native` — so every build of the library carries
/// it; the dispatch table only routes here after the CPUID probe (or a
/// forced DQNDOCK_FORCE_KERNEL=avx512) says the host can execute it.
/// Nothing in this TU runs at static-initialisation time except storing
/// plain function pointers.
///
/// The batched sweep is hand-written intrinsics (vrsqrt14pd + 2
/// Newton-Raphson steps, ~1e-9 relative from the generic divide+sqrt
/// path); the per-pose sweep reuses the shared IEEE body, which zmm
/// auto-vectorisation cannot change bit-wise — per-pose results are
/// bit-identical across tiers.

#include "src/metadock/scoring_kernels.hpp"

#ifdef DQNDOCK_KERNEL_HAVE_AVX512

#include <immintrin.h>

#include "src/metadock/scoring_kernel_impl.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's _mm512_rsqrt14_pd / _mm512_max_pd headers pass
// _mm512_undefined_pd() placeholders into the mask builtins, which trips
// -Wmaybe-uninitialized through the always_inline chain at every call
// site. Header false positive; nothing in this file reads uninitialized
// data (the masked tail lanes are explicitly zeroed).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dqndock::metadock::detail {

namespace {

/// zmm chunks (8 double lanes each) processed per pass of the batched
/// sweep's main loop. Overridable at compile time for the tiling
/// experiment; see the comment at the loop.
#ifndef DQNDOCK_AVX512_CHUNKS
#define DQNDOCK_AVX512_CHUNKS 2
#endif
constexpr int kSweepChunks = DQNDOCK_AVX512_CHUNKS;
static_assert(kSweepChunks >= 1 && kSweepChunks <= 4,
              "1..4 chunks (8..32 lanes) fit the 32 zmm registers");
constexpr std::size_t kSweepLanesPerPass = 8 * static_cast<std::size_t>(kSweepChunks);

/// AVX-512 range sweep: 8 pose lanes per zmm register, processed two
/// chunks (16 lanes) at a time with a masked single-chunk tail, so one
/// kernel serves every lane count (a lane's result is elementwise, so it
/// cannot depend on its chunk neighbours or alignment — the property the
/// bisection/tiling determinism argument needs). Lane positions and
/// accumulators load once per chunk pass and stay in registers across
/// the whole range list; per-receptor-atom broadcasts are shared by both
/// chunks of a pair and the two independent rsqrt/Newton chains overlap
/// in the pipeline. 1/sqrt runs as vrsqrt14pd + two Newton-Raphson
/// steps (~1 ulp) instead of vdivpd+vsqrtpd, which roughly halves the
/// per-pair cost; products fuse through explicit FMA intrinsics. Every
/// batched sweep on this tier goes through this one function, so batched
/// results stay bit-deterministic within the tier; they differ from the
/// generic tier (and from the per-pose kernel) within the documented
/// ~1e-9 relative envelope.
void sweepRangesAvx512(const double* X, const double* Y, const double* Z, const double* Q,
                       const double* EPS, const double* SG2, const std::uint32_t* ranges,
                       std::size_t numRanges, const double* lx, const double* ly,
                       const double* lz, std::size_t lanes, double cut2, double* elecAcc,
                       double* vdwAcc) {
  constexpr double kMinDist2 = kMinPairDistance * kMinPairDistance;
  const __m512d vcut2 = _mm512_set1_pd(cut2);
  const __m512d vmind2 = _mm512_set1_pd(kMinDist2);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  const __m512d v1p5 = _mm512_set1_pd(1.5);
  std::size_t c = 0;
  // Multi-chunk passes: kSweepChunks zmm chunks (8 lanes each) per
  // receptor atom, so every per-atom broadcast (position, charge, pair
  // row) is shared by all chunks of a pass and the independent
  // rsqrt/Newton chains overlap in the pipeline. The width was measured,
  // not guessed: 2/3/4 chunks (16/24/32 lanes) were benchmarked on
  // BM_ScorePoseBatched/32 via -DDQNDOCK_AVX512_CHUNKS (EXPERIMENTS.md)
  // and the winner hardcoded below. Each lane's arithmetic is identical
  // to the single-chunk tail, so results do not depend on which variant
  // a lane lands in (the bisection/tiling determinism argument).
  for (; c + kSweepLanesPerPass <= lanes; c += kSweepLanesPerPass) {
    __m512d vlx[kSweepChunks], vly[kSweepChunks], vlz[kSweepChunks];
    __m512d ve[kSweepChunks], vv[kSweepChunks];
    for (int u = 0; u < kSweepChunks; ++u) {
      vlx[u] = _mm512_loadu_pd(lx + c + 8 * u);
      vly[u] = _mm512_loadu_pd(ly + c + 8 * u);
      vlz[u] = _mm512_loadu_pd(lz + c + 8 * u);
      ve[u] = _mm512_loadu_pd(elecAcc + c + 8 * u);
      vv[u] = _mm512_loadu_pd(vdwAcc + c + 8 * u);
    }
    for (std::size_t k = 0; k < numRanges; ++k) {
      const std::size_t first = ranges[2 * k];
      const std::size_t end = ranges[2 * k + 1];
      for (std::size_t j = first; j < end; ++j) {
        const __m512d xj = _mm512_set1_pd(X[j]);
        const __m512d yj = _mm512_set1_pd(Y[j]);
        const __m512d zj = _mm512_set1_pd(Z[j]);
        // Stage the chains as per-step loops over the chunks (not one
        // loop with everything inside) so after unrolling the u-th and
        // (u+1)-th chunk of each step interleave — the same pipeline
        // overlap the hand-paired 2-chunk version had.
        __m512d r2[kSweepChunks];
        for (int u = 0; u < kSweepChunks; ++u) {
          const __m512d dx = _mm512_sub_pd(xj, vlx[u]);
          const __m512d dy = _mm512_sub_pd(yj, vly[u]);
          const __m512d dz = _mm512_sub_pd(zj, vlz[u]);
          r2[u] = _mm512_mul_pd(dz, dz);
          r2[u] = _mm512_fmadd_pd(dy, dy, r2[u]);
          r2[u] = _mm512_fmadd_pd(dx, dx, r2[u]);
        }
        __mmask8 kin[kSweepChunks];
        __m512d r2c[kSweepChunks], y[kSweepChunks], h[kSweepChunks];
        for (int u = 0; u < kSweepChunks; ++u) {
          kin[u] = _mm512_cmp_pd_mask(r2[u], vcut2, _CMP_LE_OQ);
          r2c[u] = _mm512_max_pd(r2[u], vmind2);
          y[u] = _mm512_rsqrt14_pd(r2c[u]);
          h[u] = _mm512_mul_pd(r2c[u], vhalf);
        }
        for (int step = 0; step < 2; ++step) {
          for (int u = 0; u < kSweepChunks; ++u) {
            const __m512d t = _mm512_mul_pd(y[u], y[u]);
            y[u] = _mm512_mul_pd(y[u], _mm512_fnmadd_pd(h[u], t, v1p5));
          }
        }
        const __m512d gj = _mm512_set1_pd(SG2[j]);
        const __m512d qj = _mm512_set1_pd(Q[j]);
        const __m512d ej = _mm512_set1_pd(EPS[j]);
        for (int u = 0; u < kSweepChunks; ++u) {
          const __m512d s2 = _mm512_mul_pd(gj, _mm512_mul_pd(y[u], y[u]));
          const __m512d s6 = _mm512_mul_pd(s2, _mm512_mul_pd(s2, s2));
          const __m512d poly = _mm512_fmsub_pd(s6, s6, s6);
          ve[u] = _mm512_mask3_fmadd_pd(qj, y[u], ve[u], kin[u]);
          vv[u] = _mm512_mask3_fmadd_pd(ej, poly, vv[u], kin[u]);
        }
      }
    }
    for (int u = 0; u < kSweepChunks; ++u) {
      _mm512_storeu_pd(elecAcc + c + 8 * u, ve[u]);
      _mm512_storeu_pd(vdwAcc + c + 8 * u, vv[u]);
    }
  }
  for (; c < lanes; c += 8) {
    const std::size_t left = lanes - c;
    const __mmask8 m = left >= 8 ? static_cast<__mmask8>(0xFF)
                                 : static_cast<__mmask8>((1u << left) - 1u);
    // mask_loadu with an explicit zero source (not maskz_loadu): same
    // semantics, but GCC 12's maskz builtin trips -Wmaybe-uninitialized.
    const __m512d vzero = _mm512_setzero_pd();
    const __m512d vlx = _mm512_mask_loadu_pd(vzero, m, lx + c);
    const __m512d vly = _mm512_mask_loadu_pd(vzero, m, ly + c);
    const __m512d vlz = _mm512_mask_loadu_pd(vzero, m, lz + c);
    __m512d ve = _mm512_mask_loadu_pd(vzero, m, elecAcc + c);
    __m512d vv = _mm512_mask_loadu_pd(vzero, m, vdwAcc + c);
    for (std::size_t k = 0; k < numRanges; ++k) {
      const std::size_t first = ranges[2 * k];
      const std::size_t end = ranges[2 * k + 1];
      for (std::size_t j = first; j < end; ++j) {
        const __m512d xj = _mm512_set1_pd(X[j]);
        const __m512d yj = _mm512_set1_pd(Y[j]);
        const __m512d zj = _mm512_set1_pd(Z[j]);
        const __m512d dx = _mm512_sub_pd(xj, vlx);
        const __m512d dy = _mm512_sub_pd(yj, vly);
        const __m512d dz = _mm512_sub_pd(zj, vlz);
        __m512d r2 = _mm512_mul_pd(dz, dz);
        r2 = _mm512_fmadd_pd(dy, dy, r2);
        r2 = _mm512_fmadd_pd(dx, dx, r2);
        // Inactive tail lanes may pass the cutoff test on their zeroed
        // positions; they are never stored, so only `kin` gating of the
        // accumulators matters for the live lanes.
        const __mmask8 kin = _mm512_cmp_pd_mask(r2, vcut2, _CMP_LE_OQ);
        const __m512d r2c = _mm512_max_pd(r2, vmind2);
        __m512d y = _mm512_rsqrt14_pd(r2c);
        const __m512d h = _mm512_mul_pd(r2c, vhalf);
        __m512d t = _mm512_mul_pd(y, y);
        y = _mm512_mul_pd(y, _mm512_fnmadd_pd(h, t, v1p5));
        t = _mm512_mul_pd(y, y);
        y = _mm512_mul_pd(y, _mm512_fnmadd_pd(h, t, v1p5));
        const __m512d gj = _mm512_set1_pd(SG2[j]);
        const __m512d s2 = _mm512_mul_pd(gj, _mm512_mul_pd(y, y));
        const __m512d s6 = _mm512_mul_pd(s2, _mm512_mul_pd(s2, s2));
        const __m512d poly = _mm512_fmsub_pd(s6, s6, s6);
        const __m512d qj = _mm512_set1_pd(Q[j]);
        const __m512d ej = _mm512_set1_pd(EPS[j]);
        ve = _mm512_mask3_fmadd_pd(qj, y, ve, kin);
        vv = _mm512_mask3_fmadd_pd(ej, poly, vv, kin);
      }
    }
    _mm512_mask_storeu_pd(elecAcc + c, m, ve);
    _mm512_mask_storeu_pd(vdwAcc + c, m, vv);
  }
}

void sweepAtomAvx512(const double* X, const double* Y, const double* Z, const double* Q,
                     const double* EPS, const double* SG2, const std::uint32_t* ranges,
                     std::size_t numRanges, double lx, double ly, double lz, double cut2,
                     double* elecOut, double* vdwOut) {
  // Shared IEEE body auto-vectorised with zmm registers: wider
  // instruction selection only, bit-identical to the generic tier.
  sweepAtomImpl(X, Y, Z, Q, EPS, SG2, ranges, numRanges, lx, ly, lz, cut2, elecOut, vdwOut);
}

}  // namespace

const ScoringKernelOps kAvx512KernelOps = {KernelTier::kAvx512, &sweepRangesAvx512,
                                           &sweepAtomAvx512};

}  // namespace dqndock::metadock::detail

#endif  // DQNDOCK_KERNEL_HAVE_AVX512
