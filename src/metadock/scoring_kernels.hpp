#pragma once

/// \file scoring_kernels.hpp
/// Runtime-dispatched Eq. 1 sweep kernels.
///
/// The batched (and per-pose packed) electrostatics+Lennard-Jones sweeps
/// live in per-ISA translation units compiled with explicit per-file
/// flags (`scoring_kernel_generic.cpp` portable, `scoring_kernel_avx512.cpp`
/// with `-mavx512f`), instead of relying on `__AVX512F__` leaking in from
/// `-march=native`. A CPUID-probed function-pointer table is chosen once
/// at `ScoringFunction` construction, so one portable Release binary
/// picks up the AVX-512 sweep on capable hosts — the one-binary-many-ISAs
/// pattern of METADOCK's multi-backend scoring engine.
///
/// Tier contract:
///  * Each tier is bit-deterministic: for a fixed tier, batched scores
///    are bit-identical across batch splits, tile sizes, and thread
///    counts, and the per-pose packed sweep is bit-identical across
///    tiers and builds (IEEE div/sqrt only — ISA changes instruction
///    selection, not results).
///  * The AVX-512 batched sweep (vrsqrt14pd + 2 Newton-Raphson steps)
///    agrees with the generic batched sweep to ~1e-9 relative.
///  * Because both tiers are compiled from fixed per-file flags, a
///    portable build and a `-march=native` build that select the same
///    tier produce bit-identical scores.
///
/// `DQNDOCK_FORCE_KERNEL=generic|avx512` overrides the probe (testing /
/// benchmarking); forcing a tier the binary or host cannot run throws.

#include <cstddef>
#include <cstdint>

namespace dqndock::metadock {

/// ISA tier of the Eq. 1 sweep kernels, ordered worst to best.
enum class KernelTier : unsigned char {
  kGeneric = 0,  ///< portable C++, compiler-auto-vectorised
  kAvx512 = 1,   ///< AVX-512F intrinsics (batched sweep), zmm auto-vec (per-pose)
};

/// Stable lowercase name ("generic", "avx512") — the value accepted by
/// DQNDOCK_FORCE_KERNEL and reported as `kernel_tier` in
/// BENCH_scoring.json.
const char* kernelTierName(KernelTier tier);

/// True when this binary contains the tier's translation unit.
bool kernelTierCompiled(KernelTier tier);

/// True when the tier is compiled in AND the running CPU can execute it.
bool kernelTierSupported(KernelTier tier);

/// Best CPU-supported tier (CPUID probe, cached).
KernelTier probeKernelTier();

/// probeKernelTier() unless DQNDOCK_FORCE_KERNEL names a tier; throws
/// std::runtime_error for an unknown name or an unsupported forced tier
/// (a forced benchmark/test run must never silently fall back).
KernelTier resolveKernelTier();

namespace detail {

/// Batched range sweep: fused elec+LJ over packed receptor ranges for
/// `lanes` pose-position lanes (see ScoringFunction docs). `ranges` holds
/// numRanges packed [first, end) index pairs, swept in order.
using SweepRangesFn = void (*)(const double* X, const double* Y, const double* Z,
                               const double* Q, const double* EPS, const double* SG2,
                               const std::uint32_t* ranges, std::size_t numRanges,
                               const double* lx, const double* ly, const double* lz,
                               std::size_t lanes, double cut2, double* elecAcc, double* vdwAcc);

/// Per-pose packed sweep: same pair arithmetic for one position, 8
/// fixed-order accumulator lanes; returns the elec (sum q_j/r) and vdw
/// (sum eps*(s12-s6)) partial sums via out params.
using SweepAtomFn = void (*)(const double* X, const double* Y, const double* Z,
                             const double* Q, const double* EPS, const double* SG2,
                             const std::uint32_t* ranges, std::size_t numRanges, double lx,
                             double ly, double lz, double cut2, double* elecOut, double* vdwOut);

/// One tier's dispatch table. Instances live in the per-ISA TUs; the
/// AVX-512 table must only be invoked after kernelTierSupported() says
/// the host can run it.
struct ScoringKernelOps {
  KernelTier tier;
  SweepRangesFn sweepRanges;
  SweepAtomFn sweepAtom;
};

extern const ScoringKernelOps kGenericKernelOps;
#ifdef DQNDOCK_KERNEL_HAVE_AVX512
extern const ScoringKernelOps kAvx512KernelOps;
#endif

/// Table for `tier`; the tier must be compiled in.
const ScoringKernelOps& scoringKernelOps(KernelTier tier);

}  // namespace detail

}  // namespace dqndock::metadock
