#pragma once

/// \file receptor_model.hpp
/// Precompiled rigid receptor: SoA parameter arrays the scoring kernels
/// stream, donor-hydrogen anchor directions for the H-bond angular term,
/// and an optional neighbour grid for cutoff pruning. Built once per
/// docking problem and shared read-only across threads.

#include <memory>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/metadock/neighbor_grid.hpp"

namespace dqndock::metadock {

class ReceptorModel {
 public:
  /// Compiles `receptor`. When gridCellSize > 0 a NeighborGrid is built
  /// with that cell edge (callers normally pass the scoring cutoff).
  explicit ReceptorModel(const chem::Molecule& receptor, double gridCellSize = 0.0);

  std::size_t atomCount() const { return positions_.size(); }

  const std::vector<Vec3>& positions() const { return positions_; }
  const std::vector<double>& charges() const { return charges_; }
  const std::vector<chem::Element>& elements() const { return elements_; }
  const std::vector<chem::HBondRole>& roles() const { return roles_; }

  /// Unit vector from the anchor heavy atom to donor hydrogen i, or the
  /// zero vector when atom i is not a bonded donor hydrogen.
  const std::vector<Vec3>& donorDirections() const { return donorDirs_; }

  const chem::Molecule& molecule() const { return molecule_; }
  Vec3 centerOfMass() const { return centerOfMass_; }

  bool hasGrid() const { return grid_ != nullptr; }
  const NeighborGrid& grid() const { return *grid_; }

 private:
  chem::Molecule molecule_;
  std::vector<Vec3> positions_;
  std::vector<double> charges_;
  std::vector<chem::Element> elements_;
  std::vector<chem::HBondRole> roles_;
  std::vector<Vec3> donorDirs_;
  Vec3 centerOfMass_;
  std::unique_ptr<NeighborGrid> grid_;
};

}  // namespace dqndock::metadock
