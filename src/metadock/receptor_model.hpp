#pragma once

/// \file receptor_model.hpp
/// Precompiled rigid receptor: SoA parameter arrays the scoring kernels
/// stream, donor-hydrogen anchor directions for the H-bond angular term,
/// and an optional neighbour grid for cutoff pruning. Built once per
/// docking problem and shared read-only across threads.
///
/// Besides the original-order arrays, the model keeps a *cell-packed*
/// SoA copy: atoms permuted into the neighbour grid's cell-sorted order
/// (identity when no grid is built) with separate contiguous
/// x/y/z/charge/element arrays, so grid query ranges map to straight-line
/// walks over flat doubles. Hydrogen-bond-capable atoms (donor hydrogens,
/// acceptors) are additionally extracted into small packed site lists so
/// the sparse H-bond term can run as its own pass outside the hot loop.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/chem/molecule.hpp"
#include "src/metadock/neighbor_grid.hpp"

namespace dqndock::metadock {

class ReceptorModel {
 public:
  /// Per-axis subcell factor of the receptor's neighbour grid: each
  /// cutoff-sized cell is split 4x4x4 so the pose-batched scoring kernel
  /// can slice the cutoff sphere at quarter-cell resolution (the swept
  /// volume saturates near the bounding-box Minkowski sum beyond this,
  /// while the per-subrow overhead keeps growing).
  static constexpr int kGridSubdiv = 4;

  /// One hydrogen-bond-capable receptor atom in the packed site lists.
  struct HBondSite {
    Vec3 pos;
    Vec3 donorDir;  ///< anchor->hydrogen unit vector; zero for acceptors
    chem::Element element = chem::Element::Unknown;
  };

  /// Compiles `receptor`. When gridCellSize > 0 a NeighborGrid is built
  /// with that cell edge (callers normally pass the scoring cutoff).
  explicit ReceptorModel(const chem::Molecule& receptor, double gridCellSize = 0.0);

  std::size_t atomCount() const { return positions_.size(); }

  const std::vector<Vec3>& positions() const { return positions_; }
  const std::vector<double>& charges() const { return charges_; }
  const std::vector<chem::Element>& elements() const { return elements_; }
  const std::vector<chem::HBondRole>& roles() const { return roles_; }

  /// Unit vector from the anchor heavy atom to donor hydrogen i, or the
  /// zero vector when atom i is not a bonded donor hydrogen.
  const std::vector<Vec3>& donorDirections() const { return donorDirs_; }

  /// Cell-packed SoA views (atom `i` here is packedOrder()[i] in the
  /// original order; identity permutation when no grid is built).
  const std::vector<std::uint32_t>& packedOrder() const { return packedOrder_; }
  const std::vector<double>& packedX() const { return packedX_; }
  const std::vector<double>& packedY() const { return packedY_; }
  const std::vector<double>& packedZ() const { return packedZ_; }
  const std::vector<double>& packedCharges() const { return packedCharges_; }
  const std::vector<chem::Element>& packedElements() const { return packedElements_; }

  /// Packed H-bond site lists (sparse subsets, packed order).
  const std::vector<HBondSite>& donorHydrogenSites() const { return donorSites_; }
  const std::vector<HBondSite>& acceptorSites() const { return acceptorSites_; }

  const chem::Molecule& molecule() const { return molecule_; }
  Vec3 centerOfMass() const { return centerOfMass_; }

  bool hasGrid() const { return grid_ != nullptr; }
  const NeighborGrid& grid() const { return *grid_; }

 private:
  chem::Molecule molecule_;
  std::vector<Vec3> positions_;
  std::vector<double> charges_;
  std::vector<chem::Element> elements_;
  std::vector<chem::HBondRole> roles_;
  std::vector<Vec3> donorDirs_;
  Vec3 centerOfMass_;
  std::unique_ptr<NeighborGrid> grid_;

  std::vector<std::uint32_t> packedOrder_;
  std::vector<double> packedX_, packedY_, packedZ_, packedCharges_;
  std::vector<chem::Element> packedElements_;
  std::vector<HBondSite> donorSites_, acceptorSites_;
};

}  // namespace dqndock::metadock
