#include "src/metadock/evaluator.hpp"

namespace dqndock::metadock {

PoseEvaluator::PoseEvaluator(const ScoringFunction& scoring, ThreadPool* pool)
    : scoring_(scoring), pool_(pool) {}

double PoseEvaluator::evaluate(const Pose& pose) {
  evals_.fetch_add(1, std::memory_order_relaxed);
  return scoring_.scorePose(pose, scratch_.pose);
}

std::unique_ptr<PoseEvaluator::Scratch> PoseEvaluator::acquireScratch() {
  {
    std::lock_guard lock(scratchMu_);
    if (!freeScratch_.empty()) {
      auto scratch = std::move(freeScratch_.back());
      freeScratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void PoseEvaluator::releaseScratch(std::unique_ptr<Scratch> scratch) {
  std::lock_guard lock(scratchMu_);
  freeScratch_.push_back(std::move(scratch));
}

std::vector<double> PoseEvaluator::evaluateBatch(std::span<const Pose> poses) {
  std::vector<double> scores(poses.size());
  evals_.fetch_add(poses.size(), std::memory_order_relaxed);
  if (pool_ == nullptr || poses.size() < 2) {
    scoring_.scoreBatch(poses, scratch_, scores);
    return scores;
  }
  pool_->parallelFor(0, poses.size(), [&](std::size_t lo, std::size_t hi) {
    // One reused buffer per chunk (one mutex hop per chunk, not per
    // pose). scoreBatch tiles internally, and per-pose results don't
    // depend on the tiling, so chunk boundaries can't change scores.
    auto scratch = acquireScratch();
    scoring_.scoreBatch(poses.subspan(lo, hi - lo), *scratch,
                        std::span<double>(scores).subspan(lo, hi - lo));
    releaseScratch(std::move(scratch));
  });
  return scores;
}

}  // namespace dqndock::metadock
