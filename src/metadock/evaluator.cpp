#include "src/metadock/evaluator.hpp"

namespace dqndock::metadock {

PoseEvaluator::PoseEvaluator(const ScoringFunction& scoring, ThreadPool* pool)
    : scoring_(scoring), pool_(pool) {}

double PoseEvaluator::evaluate(const Pose& pose) {
  evals_.fetch_add(1, std::memory_order_relaxed);
  return scoring_.scorePose(pose, scratch_);
}

std::unique_ptr<PoseEvaluator::Scratch> PoseEvaluator::acquireScratch() {
  {
    std::lock_guard lock(scratchMu_);
    if (!freeScratch_.empty()) {
      auto scratch = std::move(freeScratch_.back());
      freeScratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void PoseEvaluator::releaseScratch(std::unique_ptr<Scratch> scratch) {
  std::lock_guard lock(scratchMu_);
  freeScratch_.push_back(std::move(scratch));
}

std::vector<double> PoseEvaluator::evaluateBatch(std::span<const Pose> poses) {
  std::vector<double> scores(poses.size());
  evals_.fetch_add(poses.size(), std::memory_order_relaxed);
  if (pool_ == nullptr || poses.size() < 2) {
    for (std::size_t i = 0; i < poses.size(); ++i) {
      scores[i] = scoring_.scorePose(poses[i], scratch_);
    }
    return scores;
  }
  pool_->parallelFor(0, poses.size(), [&](std::size_t lo, std::size_t hi) {
    // One reused buffer per chunk (one mutex hop per chunk, not per pose).
    auto scratch = acquireScratch();
    for (std::size_t i = lo; i < hi; ++i) {
      scores[i] = scoring_.scorePose(poses[i], *scratch);
    }
    releaseScratch(std::move(scratch));
  });
  return scores;
}

}  // namespace dqndock::metadock
