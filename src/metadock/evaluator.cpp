#include "src/metadock/evaluator.hpp"

namespace dqndock::metadock {

PoseEvaluator::PoseEvaluator(const ScoringFunction& scoring, ThreadPool* pool)
    : scoring_(scoring), pool_(pool) {}

double PoseEvaluator::evaluate(const Pose& pose) {
  evals_.fetch_add(1, std::memory_order_relaxed);
  return scoring_.scorePose(pose, scratch_);
}

std::vector<double> PoseEvaluator::evaluateBatch(std::span<const Pose> poses) {
  std::vector<double> scores(poses.size());
  evals_.fetch_add(poses.size(), std::memory_order_relaxed);
  if (pool_ == nullptr || poses.size() < 2) {
    for (std::size_t i = 0; i < poses.size(); ++i) {
      scores[i] = scoring_.scorePose(poses[i], scratch_);
    }
    return scores;
  }
  pool_->parallelFor(0, poses.size(), [&](std::size_t lo, std::size_t hi) {
    std::vector<Vec3> scratch;  // one buffer per chunk/worker
    for (std::size_t i = lo; i < hi; ++i) {
      scores[i] = scoring_.scorePose(poses[i], scratch);
    }
  });
  return scores;
}

}  // namespace dqndock::metadock
