#include "src/metadock/surface_spots.hpp"

#include <algorithm>

namespace dqndock::metadock {

std::vector<char> surfaceAtoms(const ReceptorModel& receptor, const SurfaceSpotOptions& opts) {
  const auto& positions = receptor.positions();
  std::vector<char> exposed(positions.size(), 0);
  const double probe2 = opts.probeRadius * opts.probeRadius;

  // Neighbour counting; uses the receptor grid when its cell size covers
  // the probe radius, else brute force.
  const bool useGrid = receptor.hasGrid() && receptor.grid().cellSize() >= opts.probeRadius;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::size_t neighbors = 0;
    if (useGrid) {
      receptor.grid().forEachNear(positions[i], [&](std::size_t j) {
        if (j != i && distance2(positions[i], positions[j]) <= probe2) ++neighbors;
      });
    } else {
      for (std::size_t j = 0; j < positions.size(); ++j) {
        if (j != i && distance2(positions[i], positions[j]) <= probe2) ++neighbors;
      }
    }
    exposed[i] = neighbors < opts.buriedNeighborCount ? 1 : 0;
  }
  return exposed;
}

std::vector<SurfaceSpot> findSurfaceSpots(const ReceptorModel& receptor,
                                          const SurfaceSpotOptions& opts) {
  const auto exposed = surfaceAtoms(receptor, opts);
  const auto& positions = receptor.positions();

  // Greedy leader clustering over the exposed atoms.
  std::vector<SurfaceSpot> spots;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!exposed[i]) continue;
    bool placed = false;
    for (auto& spot : spots) {
      if (distance(positions[i], spot.center) <= opts.spotRadius) {
        spot.atoms.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      SurfaceSpot spot;
      spot.center = positions[i];
      spot.atoms.push_back(i);
      spots.push_back(std::move(spot));
    }
  }

  // Finalize: recompute centres/radii, drop noise spots, sort by size.
  std::vector<SurfaceSpot> result;
  for (auto& spot : spots) {
    if (spot.atoms.size() < opts.minSpotAtoms) continue;
    Vec3 center;
    for (std::size_t idx : spot.atoms) center += positions[idx];
    center /= static_cast<double>(spot.atoms.size());
    spot.center = center;
    spot.radius = 0.0;
    for (std::size_t idx : spot.atoms) {
      spot.radius = std::max(spot.radius, distance(positions[idx], center));
    }
    result.push_back(std::move(spot));
  }
  std::sort(result.begin(), result.end(),
            [](const SurfaceSpot& a, const SurfaceSpot& b) { return a.atoms.size() > b.atoms.size(); });
  return result;
}

std::vector<SpotDockingResult> dockAllSpots(const ScoringFunction& scoring,
                                            const std::vector<SurfaceSpot>& spots,
                                            MetaheuristicParams params, std::uint64_t seed,
                                            ThreadPool* pool) {
  std::vector<SpotDockingResult> results(spots.size());
  // Independent RNG stream per spot so parallel order cannot change
  // outcomes.
  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(spots.size());
  for (std::size_t i = 0; i < spots.size(); ++i) streams.push_back(root.split());

  auto dockSpot = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      MetaheuristicParams spotParams = params;
      spotParams.searchRadius = spots[s].radius + 4.0;
      spotParams.useSearchCenter = true;
      spotParams.searchCenter = spots[s].center;
      // Serial evaluator per spot: the parallelism is across spots.
      PoseEvaluator evaluator(scoring, nullptr);
      MetaheuristicEngine engine(evaluator, spotParams);
      Pose start(scoring.ligand().torsionCount());
      start.translation = spots[s].center;
      const MetaheuristicResult r = engine.runFrom(start, streams[s]);
      results[s] = SpotDockingResult{spots[s], r.best, r.evaluations};
    }
  };
  if (pool) {
    pool->parallelFor(0, spots.size(), dockSpot);
  } else {
    dockSpot(0, spots.size());
  }

  std::sort(results.begin(), results.end(), [](const SpotDockingResult& a, const SpotDockingResult& b) {
    return a.best.score > b.best.score;
  });
  return results;
}

}  // namespace dqndock::metadock
