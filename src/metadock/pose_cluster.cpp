#include "src/metadock/pose_cluster.hpp"

#include <algorithm>
#include <numeric>

#include "src/chem/kabsch.hpp"

namespace dqndock::metadock {

double poseRmsd(const LigandModel& ligand, const Pose& a, const Pose& b, bool aligned) {
  std::vector<Vec3> pa, pb;
  ligand.applyPose(a, pa);
  ligand.applyPose(b, pb);
  if (aligned) return chem::alignedRmsd(pa, pb);
  return chem::rmsd(std::span<const Vec3>(pa), std::span<const Vec3>(pb));
}

std::vector<PoseCluster> clusterPoses(const LigandModel& ligand,
                                      std::span<const Candidate> candidates,
                                      ClusterOptions options) {
  // Score-descending processing order.
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t l, std::size_t r) {
    return candidates[l].score > candidates[r].score;
  });

  std::vector<PoseCluster> clusters;
  std::vector<std::vector<Vec3>> repPositions;  // cached representative coords
  std::vector<Vec3> scratch;

  for (std::size_t idx : order) {
    const Candidate& c = candidates[idx];
    ligand.applyPose(c.pose, scratch);
    bool placed = false;
    for (std::size_t k = 0; k < clusters.size() && !placed; ++k) {
      const double d = options.aligned
                           ? chem::alignedRmsd(scratch, repPositions[k])
                           : chem::rmsd(std::span<const Vec3>(scratch),
                                        std::span<const Vec3>(repPositions[k]));
      if (d <= options.rmsdThreshold) {
        clusters[k].members.push_back(idx);
        placed = true;
      }
    }
    if (!placed) {
      PoseCluster cluster;
      cluster.representative = c;
      cluster.members.push_back(idx);
      clusters.push_back(std::move(cluster));
      repPositions.push_back(scratch);
    }
  }
  return clusters;
}

}  // namespace dqndock::metadock
