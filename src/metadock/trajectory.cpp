#include "src/metadock/trajectory.hpp"

#include <fstream>
#include <stdexcept>

#include "src/chem/element.hpp"

namespace dqndock::metadock {

void Trajectory::record(const Pose& pose, double score, int action, double reward) {
  frames_.push_back(TrajectoryFrame{pose, score, action, reward});
}

void Trajectory::recordFrom(const DockingEnv& env, int action, double reward) {
  record(env.pose(), env.score(), action, reward);
}

std::size_t Trajectory::bestFrame() const {
  if (frames_.empty()) throw std::logic_error("Trajectory::bestFrame: empty trajectory");
  std::size_t best = 0;
  for (std::size_t i = 1; i < frames_.size(); ++i) {
    if (frames_[i].score > frames_[best].score) best = i;
  }
  return best;
}

void Trajectory::writeXyz(std::ostream& out) const {
  const chem::Molecule& mol = ligand_->molecule();
  std::vector<Vec3> positions;
  out.precision(6);
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    const TrajectoryFrame& frame = frames_[f];
    ligand_->applyPose(frame.pose, positions);
    out << mol.atomCount() << '\n';
    out << "step=" << f << " score=" << frame.score << " action=" << frame.action
        << " reward=" << frame.reward << '\n';
    for (std::size_t i = 0; i < mol.atomCount(); ++i) {
      out << chem::elementSymbol(mol.element(i)) << ' ' << positions[i].x << ' '
          << positions[i].y << ' ' << positions[i].z << '\n';
    }
  }
}

void Trajectory::writeXyzFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trajectory::writeXyzFile: cannot open " + path);
  writeXyz(out);
}

std::vector<double> Trajectory::scores() const {
  std::vector<double> out;
  out.reserve(frames_.size());
  for (const auto& f : frames_) out.push_back(f.score);
  return out;
}

}  // namespace dqndock::metadock
