#include "src/metadock/grid_potential.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

using chem::Element;
using chem::ForceField;

ScalarGrid::ScalarGrid(const Vec3& origin, double spacing, int nx, int ny, int nz)
    : origin_(origin), spacing_(spacing), nx_(nx), ny_(ny), nz_(nz) {
  if (spacing <= 0 || nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("ScalarGrid: need spacing > 0 and >= 2 points per axis");
  }
  values_.assign(static_cast<std::size_t>(nx) * ny * nz, 0.0);
}

double& ScalarGrid::at(int ix, int iy, int iz) {
  return values_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
}

double ScalarGrid::at(int ix, int iy, int iz) const {
  return values_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
}

bool ScalarGrid::contains(const Vec3& p) const {
  const double fx = (p.x - origin_.x) / spacing_;
  const double fy = (p.y - origin_.y) / spacing_;
  const double fz = (p.z - origin_.z) / spacing_;
  return fx >= 0.0 && fy >= 0.0 && fz >= 0.0 && fx <= nx_ - 1 && fy <= ny_ - 1 && fz <= nz_ - 1;
}

double ScalarGrid::sample(const Vec3& p) const {
  if (!contains(p)) return 0.0;  // far field: the padded boundary is ~0
  const double fx = (p.x - origin_.x) / spacing_;
  const double fy = (p.y - origin_.y) / spacing_;
  const double fz = (p.z - origin_.z) / spacing_;
  // Clamp into the valid interpolation range [0, n-1).
  const double cx = std::clamp(fx, 0.0, static_cast<double>(nx_ - 1) - 1e-9);
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny_ - 1) - 1e-9);
  const double cz = std::clamp(fz, 0.0, static_cast<double>(nz_ - 1) - 1e-9);
  const int ix = static_cast<int>(cx);
  const int iy = static_cast<int>(cy);
  const int iz = static_cast<int>(cz);
  const double tx = cx - ix, ty = cy - iy, tz = cz - iz;

  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  const double c00 = lerp(at(ix, iy, iz), at(ix + 1, iy, iz), tx);
  const double c10 = lerp(at(ix, iy + 1, iz), at(ix + 1, iy + 1, iz), tx);
  const double c01 = lerp(at(ix, iy, iz + 1), at(ix + 1, iy, iz + 1), tx);
  const double c11 = lerp(at(ix, iy + 1, iz + 1), at(ix + 1, iy + 1, iz + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

GridPotential::GridPotential(const ReceptorModel& receptor, GridPotentialOptions options)
    : options_(options) {
  const auto [lo, hi] = receptor.molecule().boundingBox();
  const Vec3 origin = lo - Vec3{options_.padding, options_.padding, options_.padding};
  const Vec3 extent = hi - lo + Vec3{2 * options_.padding, 2 * options_.padding,
                                     2 * options_.padding};
  const int nx = std::max(2, static_cast<int>(std::ceil(extent.x / options_.spacing)) + 1);
  const int ny = std::max(2, static_cast<int>(std::ceil(extent.y / options_.spacing)) + 1);
  const int nz = std::max(2, static_cast<int>(std::ceil(extent.z / options_.spacing)) + 1);

  electrostatic_ = std::make_unique<ScalarGrid>(origin, options_.spacing, nx, ny, nz);
  // Elements that occur in drug-like ligands and therefore need LJ maps.
  const Element probeElements[] = {Element::H, Element::C, Element::N, Element::O,
                                   Element::S, Element::F, Element::Cl};
  for (Element e : probeElements) {
    perElement_[static_cast<std::size_t>(e)] =
        std::make_unique<ScalarGrid>(origin, options_.spacing, nx, ny, nz);
  }

  const double cut2 = options_.cutoff * options_.cutoff;
  const ForceField& ff = ForceField::standard();
  const chem::HBondParams hb = ff.hbond();

  // Fill plane-by-plane; planes are independent, so the pool splits on z.
  auto fillPlanes = [&](std::size_t zLo, std::size_t zHi) {
    for (std::size_t z = zLo; z < zHi; ++z) {
      for (int iy = 0; iy < ny; ++iy) {
        for (int ix = 0; ix < nx; ++ix) {
          const Vec3 p = origin + Vec3{ix * options_.spacing, iy * options_.spacing,
                                       static_cast<double>(z) * options_.spacing};
          double elec = 0.0;
          double lj[chem::kElementCount] = {};
          for (std::size_t ra = 0; ra < receptor.atomCount(); ++ra) {
            const double r2 = distance2(receptor.positions()[ra], p);
            if (r2 > cut2) continue;
            const double r = std::sqrt(r2);
            elec += chem::kCoulomb * receptor.charges()[ra] /
                    std::max(r, kMinPairDistance);
            for (Element e : probeElements) {
              const chem::LjParams pair = ff.ljPair(receptor.elements()[ra], e);
              double energy = lennardJonesEnergy(pair.epsilon, pair.sigma, r);
              // Fold the aligned 12-10 H-bond well into the map when the
              // receptor atom is a donor hydrogen and the probe element
              // is a typical acceptor (N/O).
              if (receptor.roles()[ra] == chem::HBondRole::kDonorHydrogen &&
                  (e == Element::N || e == Element::O)) {
                energy += hb.c12 / std::pow(std::max(r, kMinPairDistance), 12) -
                          hb.d10 / std::pow(std::max(r, kMinPairDistance), 10);
              }
              lj[static_cast<std::size_t>(e)] += energy;
            }
          }
          electrostatic_->at(ix, iy, static_cast<int>(z)) =
              std::clamp(elec, -options_.energyClamp, options_.energyClamp);
          for (Element e : probeElements) {
            perElement_[static_cast<std::size_t>(e)]->at(ix, iy, static_cast<int>(z)) =
                std::clamp(lj[static_cast<std::size_t>(e)], -options_.energyClamp,
                           options_.energyClamp);
          }
        }
      }
    }
  };

  if (options_.pool) {
    options_.pool->parallelFor(0, static_cast<std::size_t>(nz), fillPlanes);
  } else {
    fillPlanes(0, static_cast<std::size_t>(nz));
  }
}

const ScalarGrid& GridPotential::elementMap(Element e) const {
  const auto& map = perElement_[static_cast<std::size_t>(e)];
  if (!map) {
    // Fall back to carbon for exotic elements.
    return *perElement_[static_cast<std::size_t>(Element::C)];
  }
  return *map;
}

double GridPotential::atomEnergy(Element e, double q, const Vec3& p) const {
  return q * electrostatic_->sample(p) + elementMap(e).sample(p);
}

double GridPotential::score(const LigandModel& ligand,
                            std::span<const Vec3> positions) const {
  if (positions.size() != ligand.atomCount()) {
    throw std::invalid_argument("GridPotential::score: position count mismatch");
  }
  double energy = 0.0;
  const chem::Molecule& mol = ligand.molecule();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    energy += atomEnergy(mol.element(i), mol.charge(i), positions[i]);
  }
  return -energy;
}

std::size_t GridPotential::memoryBytes() const {
  std::size_t bytes = electrostatic_->memoryBytes();
  for (const auto& map : perElement_) {
    if (map) bytes += map->memoryBytes();
  }
  return bytes;
}

}  // namespace dqndock::metadock
