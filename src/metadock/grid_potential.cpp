#include "src/metadock/grid_potential.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

using chem::Element;
using chem::ForceField;

ScalarGrid::ScalarGrid(const Vec3& origin, double spacing, int nx, int ny, int nz)
    : origin_(origin), spacing_(spacing), nx_(nx), ny_(ny), nz_(nz) {
  if (spacing <= 0 || nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("ScalarGrid: need spacing > 0 and >= 2 points per axis");
  }
  values_.assign(static_cast<std::size_t>(nx) * ny * nz, 0.0);
}

double& ScalarGrid::at(int ix, int iy, int iz) {
  return values_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
}

double ScalarGrid::at(int ix, int iy, int iz) const {
  return values_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
}

bool ScalarGrid::contains(const Vec3& p) const {
  const double fx = (p.x - origin_.x) / spacing_;
  const double fy = (p.y - origin_.y) / spacing_;
  const double fz = (p.z - origin_.z) / spacing_;
  return fx >= 0.0 && fy >= 0.0 && fz >= 0.0 && fx <= nx_ - 1 && fy <= ny_ - 1 && fz <= nz_ - 1;
}

double ScalarGrid::sample(const Vec3& p) const {
  if (!contains(p)) return 0.0;  // far field: the padded boundary is ~0
  const double fx = (p.x - origin_.x) / spacing_;
  const double fy = (p.y - origin_.y) / spacing_;
  const double fz = (p.z - origin_.z) / spacing_;
  // Clamp into the valid interpolation range [0, n-1).
  const double cx = std::clamp(fx, 0.0, static_cast<double>(nx_ - 1) - 1e-9);
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny_ - 1) - 1e-9);
  const double cz = std::clamp(fz, 0.0, static_cast<double>(nz_ - 1) - 1e-9);
  const int ix = static_cast<int>(cx);
  const int iy = static_cast<int>(cy);
  const int iz = static_cast<int>(cz);
  const double tx = cx - ix, ty = cy - iy, tz = cz - iz;

  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  const double c00 = lerp(at(ix, iy, iz), at(ix + 1, iy, iz), tx);
  const double c10 = lerp(at(ix, iy + 1, iz), at(ix + 1, iy + 1, iz), tx);
  const double c01 = lerp(at(ix, iy, iz + 1), at(ix + 1, iy, iz + 1), tx);
  const double c11 = lerp(at(ix, iy + 1, iz + 1), at(ix + 1, iy + 1, iz + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

GridPotential::GridPotential(const ReceptorModel& receptor, GridPotentialOptions options)
    : options_(options) {
  const auto [lo, hi] = receptor.molecule().boundingBox();
  const Vec3 origin = lo - Vec3{options_.padding, options_.padding, options_.padding};
  const Vec3 extent = hi - lo + Vec3{2 * options_.padding, 2 * options_.padding,
                                     2 * options_.padding};
  const int nx = std::max(2, static_cast<int>(std::ceil(extent.x / options_.spacing)) + 1);
  const int ny = std::max(2, static_cast<int>(std::ceil(extent.y / options_.spacing)) + 1);
  const int nz = std::max(2, static_cast<int>(std::ceil(extent.z / options_.spacing)) + 1);

  electrostatic_ = std::make_unique<ScalarGrid>(origin, options_.spacing, nx, ny, nz);
  // Elements that occur in drug-like ligands and therefore need LJ maps.
  const Element probeElements[] = {Element::H, Element::C, Element::N, Element::O,
                                   Element::S, Element::F, Element::Cl};
  for (Element e : probeElements) {
    perElement_[static_cast<std::size_t>(e)] =
        std::make_unique<ScalarGrid>(origin, options_.spacing, nx, ny, nz);
  }

  const double cut2 = options_.cutoff * options_.cutoff;
  const ForceField& ff = ForceField::standard();
  const chem::HBondParams hb = ff.hbond();
  constexpr double kMinDist2 = kMinPairDistance * kMinPairDistance;

  // Stream the receptor's cell-packed SoA arrays with precomputed
  // per-probe pair rows (no per-pair Lorentz-Berthelot combining), and
  // prune through the neighbour grid when its cells cover the cutoff.
  constexpr std::size_t kNumProbes = sizeof(probeElements) / sizeof(probeElements[0]);
  chem::PairRowTable probeRows[kNumProbes];
  for (std::size_t pe = 0; pe < kNumProbes; ++pe) {
    probeRows[pe] = ff.pairRows(probeElements[pe], receptor.packedElements());
  }
  const double* X = receptor.packedX().data();
  const double* Y = receptor.packedY().data();
  const double* Z = receptor.packedZ().data();
  const double* Q = receptor.packedCharges().data();
  const bool pruned =
      receptor.hasGrid() && receptor.grid().cellSize() + 1e-12 >= options_.cutoff;

  // Fill plane-by-plane; planes are independent, so the pool splits on z.
  // Per-point sums are independent of the partition, so parallel and
  // serial fills are bit-identical.
  auto fillPlanes = [&](std::size_t zLo, std::size_t zHi) {
    NeighborGrid::Range ranges[NeighborGrid::kMaxQueryRanges];
    for (std::size_t z = zLo; z < zHi; ++z) {
      for (int iy = 0; iy < ny; ++iy) {
        for (int ix = 0; ix < nx; ++ix) {
          const Vec3 p = origin + Vec3{ix * options_.spacing, iy * options_.spacing,
                                       static_cast<double>(z) * options_.spacing};
          int numRanges = 1;
          if (pruned) {
            numRanges = receptor.grid().queryRanges(p, ranges);
          } else {
            ranges[0] = NeighborGrid::Range{0, static_cast<std::uint32_t>(receptor.atomCount())};
          }
          double elec = 0.0;
          double lj[kNumProbes] = {};
          for (int k = 0; k < numRanges; ++k) {
            const std::size_t end = ranges[k].first + ranges[k].count;
            for (std::size_t j = ranges[k].first; j < end; ++j) {
              const double dx = X[j] - p.x;
              const double dy = Y[j] - p.y;
              const double dz = Z[j] - p.z;
              const double r2 = dx * dx + dy * dy + dz * dz;
              if (r2 > cut2) continue;
              const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
              const double rinv = 1.0 / std::sqrt(r2c);
              elec += Q[j] * rinv;
              const double inv2 = rinv * rinv;
              for (std::size_t pe = 0; pe < kNumProbes; ++pe) {
                const double s2 = probeRows[pe].sigma2[j] * inv2;
                const double s6 = s2 * s2 * s2;
                lj[pe] += probeRows[pe].epsilon[j] * (s6 * s6 - s6);
              }
            }
          }
          // Fold the aligned 12-10 H-bond well into the N/O maps: the
          // receptor's donor hydrogens are a packed sparse list, so this
          // second pass costs a handful of sites per point.
          double hbWell = 0.0;
          for (const ReceptorModel::HBondSite& d : receptor.donorHydrogenSites()) {
            const double r2 = distance2(d.pos, p);
            if (r2 > cut2) continue;
            const double r2c = r2 > kMinDist2 ? r2 : kMinDist2;
            const double r10 = r2c * r2c * r2c * r2c * r2c;
            const double r12 = r10 * r2c;
            hbWell += hb.c12 / r12 - hb.d10 / r10;
          }
          electrostatic_->at(ix, iy, static_cast<int>(z)) =
              std::clamp(chem::kCoulomb * elec, -options_.energyClamp, options_.energyClamp);
          for (std::size_t pe = 0; pe < kNumProbes; ++pe) {
            const Element e = probeElements[pe];
            double energy = 4.0 * lj[pe];
            if (e == Element::N || e == Element::O) energy += hbWell;
            perElement_[static_cast<std::size_t>(e)]->at(ix, iy, static_cast<int>(z)) =
                std::clamp(energy, -options_.energyClamp, options_.energyClamp);
          }
        }
      }
    }
  };

  if (options_.pool) {
    options_.pool->parallelFor(0, static_cast<std::size_t>(nz), fillPlanes);
  } else {
    fillPlanes(0, static_cast<std::size_t>(nz));
  }
}

const ScalarGrid& GridPotential::elementMap(Element e) const {
  const auto& map = perElement_[static_cast<std::size_t>(e)];
  if (!map) {
    // Fall back to carbon for exotic elements.
    return *perElement_[static_cast<std::size_t>(Element::C)];
  }
  return *map;
}

double GridPotential::atomEnergy(Element e, double q, const Vec3& p) const {
  return q * electrostatic_->sample(p) + elementMap(e).sample(p);
}

double GridPotential::score(const LigandModel& ligand,
                            std::span<const Vec3> positions) const {
  if (positions.size() != ligand.atomCount()) {
    throw std::invalid_argument("GridPotential::score: position count mismatch");
  }
  double energy = 0.0;
  const chem::Molecule& mol = ligand.molecule();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    energy += atomEnergy(mol.element(i), mol.charge(i), positions[i]);
  }
  return -energy;
}

std::size_t GridPotential::memoryBytes() const {
  std::size_t bytes = electrostatic_->memoryBytes();
  for (const auto& map : perElement_) {
    if (map) bytes += map->memoryBytes();
  }
  return bytes;
}

}  // namespace dqndock::metadock
