#pragma once

/// \file neighbor_grid.hpp
/// Dense uniform grid over the stored points' bounding box. With a
/// scoring cutoff of r_c, each ligand atom only needs the receptor atoms
/// in the 27 cells around it, turning the O(n*m) pair loop of Algorithm 1
/// into an output-sensitive sweep — the same pruning METADOCK's GPU
/// kernels perform by tiling the receptor surface into independent spots.
///
/// Data-oriented layout: cells live in a dense 3-D array indexed by
/// integer coordinates (no hashing), points are stored as one permutation
/// grouped by cell (`cellOrder`), and every in-box cell carries a
/// precomputed flat list of the contiguous point ranges covering its
/// 27-neighbourhood. Because cells adjacent in x are adjacent in the
/// packed order, the 27 cells merge into at most 9 ranges (one per
/// (y, z) row), so a query is integer math plus up to 9 contiguous range
/// walks — the shape the SoA scoring kernel streams.
///
/// Optionally each cell is further subdivided into subdiv^3 subcells and
/// points within a cell are grouped by subcell (`subOffsets`). Cell-level
/// queries are unaffected (the permutation still groups by cell), but
/// consumers that know a query region tighter than the 27-cell
/// neighbourhood — the pose-batched scoring kernel slicing the cutoff
/// sphere around a batch of poses — can skip whole subcells whose minimum
/// distance to the region exceeds the cutoff.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/vec3.hpp"

namespace dqndock::metadock {

class NeighborGrid {
 public:
  /// Contiguous slice [first, first + count) of the cell-sorted order.
  struct Range {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  /// A 27-cell neighbourhood merges into at most 9 x-rows.
  static constexpr int kMaxQueryRanges = 9;

  /// Builds a grid with cell edge `cellSize` (usually the scoring cutoff)
  /// over `points`. cellSize must be > 0. `subdiv` >= 2 additionally
  /// groups the points of every cell by subdiv^3 subcells (see
  /// subOffsets); 1 keeps the flat per-cell grouping.
  NeighborGrid(std::span<const Vec3> points, double cellSize, int subdiv = 1);

  double cellSize() const { return cell_; }
  std::size_t pointCount() const { return order_.size(); }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  const Vec3& origin() const { return origin_; }

  /// Requested per-axis subdivision factor (>= 1).
  int subdiv() const { return subdiv_; }
  /// True when the per-subcell CSR was built (subdiv >= 2 and the cell
  /// count is small enough for the table).
  bool hasSubcells() const { return !subOffsets_.empty(); }
  /// CSR over cellOrder(): subcell s of cell c holds the points
  /// order_[subOffsets()[c * subdiv^3 + s] .. subOffsets()[c * subdiv^3 + s + 1]),
  /// where s = (sz * subdiv + sy) * subdiv + sx from the point's offset
  /// inside its cell. Empty unless hasSubcells().
  const std::vector<std::uint32_t>& subOffsets() const { return subOffsets_; }

  /// Cell coordinates of `query` (same arithmetic as queryRanges, so the
  /// two never disagree). Returns false when the query is so far outside
  /// the box that its clamped 27-cell window cannot overlap any cell; the
  /// coordinates are unclamped and may lie outside [0, n) otherwise.
  bool cellCoords(const Vec3& query, int& cx, int& cy, int& cz) const;

  /// Point indices (into the constructor's array) grouped by cell in
  /// dense linear-cell order; stable by original index within a cell
  /// (within a subcell when subdivided). This is the packed order SoA
  /// consumers sort their arrays by.
  const std::vector<std::uint32_t>& cellOrder() const { return order_; }

  /// numCells+1 prefix sums into cellOrder() by dense linear cell index.
  const std::vector<std::uint32_t>& cellOffsets() const { return offsets_; }

  /// Dense linear index of in-box cell (x, y, z); x varies fastest, so
  /// cells adjacent in x hold adjacent slices of cellOrder().
  std::size_t cellLinearIndex(int x, int y, int z) const { return cellIndex(x, y, z); }

  /// Fills `out` (capacity >= kMaxQueryRanges) with the contiguous
  /// cell-sorted ranges covering the 27-cell neighbourhood of `query`;
  /// returns the number of ranges written. Ranges index the *packed*
  /// order, i.e. points are order_[first..first+count). Queries anywhere
  /// in space are valid; far-outside queries yield 0 ranges.
  int queryRanges(const Vec3& query, Range* out) const;

  /// Invoke fn(pointIndex) for every stored point within the 27-cell
  /// neighbourhood of `query` (superset of all points within cellSize of
  /// the query; callers still apply the exact distance test).
  template <typename Fn>
  void forEachNear(const Vec3& query, Fn&& fn) const {
    Range ranges[kMaxQueryRanges];
    const int n = queryRanges(query, ranges);
    for (int k = 0; k < n; ++k) {
      const std::uint32_t end = ranges[k].first + ranges[k].count;
      for (std::uint32_t i = ranges[k].first; i < end; ++i) {
        fn(static_cast<std::size_t>(order_[i]));
      }
    }
  }

  /// All stored points within the 27-cell neighbourhood (convenience for
  /// tests and non-hot paths).
  std::vector<std::size_t> near(const Vec3& query) const;

 private:
  std::size_t cellIndex(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(x);
  }

  /// Walks the clamped 3x3x3 window around cell (cx, cy, cz) and writes
  /// the non-empty merged x-row ranges; shared by the build-time
  /// precompute and the out-of-box query fallback.
  int gatherRanges(int cx, int cy, int cz, Range* out) const;

  double cell_ = 1.0;
  Vec3 origin_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  int subdiv_ = 1;
  std::vector<std::uint32_t> order_;    ///< point indices grouped by cell
  std::vector<std::uint32_t> offsets_;  ///< numCells+1 prefix sums into order_
  /// numCells*subdiv^3+1 prefix sums into order_ (empty when subdiv==1 or
  /// the cell count exceeds the table bound).
  std::vector<std::uint32_t> subOffsets_;
  /// CSR neighbour table: for in-box cell c, the precomputed ranges are
  /// neighborRanges_[neighborStart_[c] .. neighborStart_[c + 1]).
  /// Empty when the cell count exceeds kNeighborTableMaxCells.
  std::vector<std::uint32_t> neighborStart_;
  std::vector<Range> neighborRanges_;
};

}  // namespace dqndock::metadock
