#pragma once

/// \file neighbor_grid.hpp
/// Dense uniform grid over the stored points' bounding box. With a
/// scoring cutoff of r_c, each ligand atom only needs the receptor atoms
/// in the 27 cells around it, turning the O(n*m) pair loop of Algorithm 1
/// into an output-sensitive sweep — the same pruning METADOCK's GPU
/// kernels perform by tiling the receptor surface into independent spots.
///
/// Data-oriented layout: cells live in a dense 3-D array indexed by
/// integer coordinates (no hashing), points are stored as one permutation
/// grouped by cell (`cellOrder`), and every in-box cell carries a
/// precomputed flat list of the contiguous point ranges covering its
/// 27-neighbourhood. Because cells adjacent in x are adjacent in the
/// packed order, the 27 cells merge into at most 9 ranges (one per
/// (y, z) row), so a query is integer math plus up to 9 contiguous range
/// walks — the shape the SoA scoring kernel streams.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/vec3.hpp"

namespace dqndock::metadock {

class NeighborGrid {
 public:
  /// Contiguous slice [first, first + count) of the cell-sorted order.
  struct Range {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  /// A 27-cell neighbourhood merges into at most 9 x-rows.
  static constexpr int kMaxQueryRanges = 9;

  /// Builds a grid with cell edge `cellSize` (usually the scoring cutoff)
  /// over `points`. cellSize must be > 0.
  NeighborGrid(std::span<const Vec3> points, double cellSize);

  double cellSize() const { return cell_; }
  std::size_t pointCount() const { return order_.size(); }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  const Vec3& origin() const { return origin_; }

  /// Point indices (into the constructor's array) grouped by cell in
  /// dense linear-cell order; stable by original index within a cell.
  /// This is the packed order SoA consumers sort their arrays by.
  const std::vector<std::uint32_t>& cellOrder() const { return order_; }

  /// Fills `out` (capacity >= kMaxQueryRanges) with the contiguous
  /// cell-sorted ranges covering the 27-cell neighbourhood of `query`;
  /// returns the number of ranges written. Ranges index the *packed*
  /// order, i.e. points are order_[first..first+count). Queries anywhere
  /// in space are valid; far-outside queries yield 0 ranges.
  int queryRanges(const Vec3& query, Range* out) const;

  /// Invoke fn(pointIndex) for every stored point within the 27-cell
  /// neighbourhood of `query` (superset of all points within cellSize of
  /// the query; callers still apply the exact distance test).
  template <typename Fn>
  void forEachNear(const Vec3& query, Fn&& fn) const {
    Range ranges[kMaxQueryRanges];
    const int n = queryRanges(query, ranges);
    for (int k = 0; k < n; ++k) {
      const std::uint32_t end = ranges[k].first + ranges[k].count;
      for (std::uint32_t i = ranges[k].first; i < end; ++i) {
        fn(static_cast<std::size_t>(order_[i]));
      }
    }
  }

  /// All stored points within the 27-cell neighbourhood (convenience for
  /// tests and non-hot paths).
  std::vector<std::size_t> near(const Vec3& query) const;

 private:
  std::size_t cellIndex(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(x);
  }

  /// Walks the clamped 3x3x3 window around cell (cx, cy, cz) and writes
  /// the non-empty merged x-row ranges; shared by the build-time
  /// precompute and the out-of-box query fallback.
  int gatherRanges(int cx, int cy, int cz, Range* out) const;

  double cell_ = 1.0;
  Vec3 origin_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::uint32_t> order_;    ///< point indices grouped by cell
  std::vector<std::uint32_t> offsets_;  ///< numCells+1 prefix sums into order_
  /// CSR neighbour table: for in-box cell c, the precomputed ranges are
  /// neighborRanges_[neighborStart_[c] .. neighborStart_[c + 1]).
  /// Empty when the cell count exceeds kNeighborTableMaxCells.
  std::vector<std::uint32_t> neighborStart_;
  std::vector<Range> neighborRanges_;
};

}  // namespace dqndock::metadock
