#pragma once

/// \file neighbor_grid.hpp
/// Uniform spatial hash over receptor atoms. With a scoring cutoff of
/// r_c, each ligand atom only needs the receptor atoms in the 27 cells
/// around it, turning the O(n*m) pair loop of Algorithm 1 into an output-
/// sensitive sweep — the same pruning METADOCK's GPU kernels perform by
/// tiling the receptor surface into independent spots.

#include <cstddef>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/common/vec3.hpp"

namespace dqndock::metadock {

class NeighborGrid {
 public:
  /// Builds a grid with cell edge `cellSize` (usually the scoring cutoff)
  /// over `points`. cellSize must be > 0.
  NeighborGrid(std::span<const Vec3> points, double cellSize);

  double cellSize() const { return cell_; }
  std::size_t pointCount() const { return pointCell_.size(); }

  /// Invoke fn(pointIndex) for every stored point within the 27-cell
  /// neighbourhood of `query` (superset of all points within cellSize of
  /// the query; callers still apply the exact distance test).
  template <typename Fn>
  void forEachNear(const Vec3& query, Fn&& fn) const {
    const auto [cx, cy, cz] = cellCoords(query);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const long key = cellKey(cx + dx, cy + dy, cz + dz);
          const auto it = cellStart_.find(key);
          if (it == cellStart_.end()) continue;
          const auto [start, count] = it->second;
          for (std::size_t i = 0; i < count; ++i) fn(cellPoints_[start + i]);
        }
      }
    }
  }

  /// All stored points within the 27-cell neighbourhood (convenience for
  /// tests and non-hot paths).
  std::vector<std::size_t> near(const Vec3& query) const;

 private:
  struct Range {
    std::size_t first;
    std::size_t count;
  };

  std::tuple<int, int, int> cellCoords(const Vec3& p) const;
  static long cellKey(int x, int y, int z);

  double cell_ = 1.0;
  Vec3 origin_;
  std::vector<long> pointCell_;                 ///< cell key per point
  std::vector<std::size_t> cellPoints_;         ///< point indices grouped by cell
  std::unordered_map<long, Range> cellStart_;   ///< key -> range in cellPoints_
};

}  // namespace dqndock::metadock
