#pragma once

/// \file pose.hpp
/// Ligand pose: the degrees of freedom METADOCK optimizes. A pose is a
/// rigid-body placement (translation + orientation) plus one torsion
/// angle per rotatable bond for flexible ligands.

#include <cstddef>
#include <vector>

#include "src/common/quat.hpp"
#include "src/common/rng.hpp"
#include "src/common/vec3.hpp"

namespace dqndock::metadock {

struct Pose {
  Vec3 translation;                ///< ligand frame origin in world space
  Quat orientation;                ///< rotation about the ligand centroid
  std::vector<double> torsions;    ///< radians, one per rotatable bond

  Pose() = default;
  explicit Pose(std::size_t torsionCount) : torsions(torsionCount, 0.0) {}

  /// Number of scalar degrees of freedom (3 + 4 + torsions).
  std::size_t dofCount() const { return 7 + torsions.size(); }

  /// Serialize to a flat vector (translation, quaternion, torsions) — the
  /// wire format of the file-based environment and the compact replay.
  std::vector<double> flatten() const;
  static Pose unflatten(const std::vector<double>& data, std::size_t torsionCount);

  bool operator==(const Pose& o) const;
};

/// Uniformly random pose: translation inside a box around `center` with
/// half-extent `radius`, uniform random orientation, torsions in (-pi,pi].
Pose randomPose(const Vec3& center, double radius, std::size_t torsionCount, Rng& rng);

/// Gaussian perturbation of a pose (metaheuristic mutation move).
Pose perturbPose(const Pose& base, double transStddev, double rotStddevRad,
                 double torsionStddevRad, Rng& rng);

}  // namespace dqndock::metadock
