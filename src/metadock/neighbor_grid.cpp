#include "src/metadock/neighbor_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

NeighborGrid::NeighborGrid(std::span<const Vec3> points, double cellSize) : cell_(cellSize) {
  if (cellSize <= 0.0) throw std::invalid_argument("NeighborGrid: cellSize must be > 0");
  if (!points.empty()) {
    origin_ = points.front();
    for (const auto& p : points) origin_ = origin_.min(p);
  }
  pointCell_.resize(points.size());
  // Count per cell, then bucket (counting sort by cell).
  std::unordered_map<long, std::size_t> counts;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [cx, cy, cz] = cellCoords(points[i]);
    const long key = cellKey(cx, cy, cz);
    pointCell_[i] = key;
    ++counts[key];
  }
  cellStart_.reserve(counts.size());
  std::size_t offset = 0;
  for (const auto& [key, count] : counts) {
    cellStart_[key] = Range{offset, 0};
    offset += count;
  }
  cellPoints_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    Range& r = cellStart_[pointCell_[i]];
    cellPoints_[r.first + r.count] = i;
    ++r.count;
  }
}

std::vector<std::size_t> NeighborGrid::near(const Vec3& query) const {
  std::vector<std::size_t> out;
  forEachNear(query, [&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::tuple<int, int, int> NeighborGrid::cellCoords(const Vec3& p) const {
  return {static_cast<int>(std::floor((p.x - origin_.x) / cell_)),
          static_cast<int>(std::floor((p.y - origin_.y) / cell_)),
          static_cast<int>(std::floor((p.z - origin_.z) / cell_))};
}

long NeighborGrid::cellKey(int x, int y, int z) {
  // Pack three 21-bit signed coordinates into one 64-bit key.
  const long bias = 1 << 20;
  return ((static_cast<long>(x) + bias) << 42) | ((static_cast<long>(y) + bias) << 21) |
         (static_cast<long>(z) + bias);
}

}  // namespace dqndock::metadock
