#include "src/metadock/neighbor_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::metadock {

namespace {

/// Above this many cells the precomputed neighbour table is skipped and
/// queries fall back to the on-the-fly window walk (still hash-free);
/// bounds memory for pathologically sparse point sets.
constexpr std::size_t kNeighborTableMaxCells = std::size_t{1} << 18;

}  // namespace

NeighborGrid::NeighborGrid(std::span<const Vec3> points, double cellSize, int subdiv)
    : cell_(cellSize), subdiv_(subdiv) {
  if (cellSize <= 0.0) throw std::invalid_argument("NeighborGrid: cellSize must be > 0");
  if (subdiv < 1) throw std::invalid_argument("NeighborGrid: subdiv must be >= 1");
  if (points.empty()) return;

  Vec3 lo = points.front();
  Vec3 hi = points.front();
  for (const auto& p : points) {
    lo = lo.min(p);
    hi = hi.max(p);
  }
  origin_ = lo;
  nx_ = static_cast<int>(std::floor((hi.x - lo.x) / cell_)) + 1;
  ny_ = static_cast<int>(std::floor((hi.y - lo.y) / cell_)) + 1;
  nz_ = static_cast<int>(std::floor((hi.z - lo.z) / cell_)) + 1;
  const std::size_t numCells = static_cast<std::size_t>(nx_) * ny_ * nz_;

  // Counting sort by dense cell index — extended to (cell, subcell) when
  // subdivided, so a cell's points are additionally grouped by subcell.
  const bool subcells = subdiv_ > 1 && numCells <= kNeighborTableMaxCells;
  const std::size_t S = subcells ? static_cast<std::size_t>(subdiv_) : 1;
  const std::size_t S3 = S * S * S;
  const double subCell = cell_ / static_cast<double>(S);
  const std::size_t numKeys = numCells * S3;

  std::vector<std::uint32_t> keyOf(points.size());
  std::vector<std::uint32_t> counts(numKeys, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Vec3& p = points[i];
    // Points define the box, so coords are in range up to fp rounding;
    // clamp to be safe at the faces.
    const int cx = std::min(nx_ - 1, std::max(0, static_cast<int>(std::floor((p.x - lo.x) / cell_))));
    const int cy = std::min(ny_ - 1, std::max(0, static_cast<int>(std::floor((p.y - lo.y) / cell_))));
    const int cz = std::min(nz_ - 1, std::max(0, static_cast<int>(std::floor((p.z - lo.z) / cell_))));
    std::size_t key = cellIndex(cx, cy, cz) * S3;
    if (subcells) {
      // Subcell from the offset inside the cell; the clamp keeps boundary
      // rounding (cell-floor vs subcell-floor disagreeing by one ulp)
      // from escaping the cell. Consumers pruning by subcell geometry
      // must therefore allow a tiny margin on the subcell box.
      const int maxS = static_cast<int>(S) - 1;
      const int sx = std::min(maxS, std::max(0, static_cast<int>(std::floor(
                                                    (p.x - lo.x - cx * cell_) / subCell))));
      const int sy = std::min(maxS, std::max(0, static_cast<int>(std::floor(
                                                    (p.y - lo.y - cy * cell_) / subCell))));
      const int sz = std::min(maxS, std::max(0, static_cast<int>(std::floor(
                                                    (p.z - lo.z - cz * cell_) / subCell))));
      key += (static_cast<std::size_t>(sz) * S + static_cast<std::size_t>(sy)) * S +
             static_cast<std::size_t>(sx);
    }
    keyOf[i] = static_cast<std::uint32_t>(key);
    ++counts[key];
  }
  std::vector<std::uint32_t> keyOffsets(numKeys + 1, 0);
  for (std::size_t k = 0; k < numKeys; ++k) keyOffsets[k + 1] = keyOffsets[k] + counts[k];
  order_.resize(points.size());
  std::vector<std::uint32_t> cursor(keyOffsets.begin(), keyOffsets.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    order_[cursor[keyOf[i]]++] = static_cast<std::uint32_t>(i);
  }
  // Per-cell prefix sums are the stride-S3 slice of the per-key sums.
  offsets_.assign(numCells + 1, 0);
  for (std::size_t c = 0; c <= numCells; ++c) offsets_[c] = keyOffsets[c * S3];
  if (subcells) subOffsets_ = std::move(keyOffsets);

  if (numCells > kNeighborTableMaxCells) return;

  // Precompute the merged 27-neighbourhood ranges per cell (CSR).
  neighborStart_.assign(numCells + 1, 0);
  neighborRanges_.reserve(numCells * 3);
  Range scratch[kMaxQueryRanges];
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        const int n = gatherRanges(x, y, z, scratch);
        for (int k = 0; k < n; ++k) neighborRanges_.push_back(scratch[k]);
        neighborStart_[cellIndex(x, y, z) + 1] = static_cast<std::uint32_t>(neighborRanges_.size());
      }
    }
  }
}

int NeighborGrid::gatherRanges(int cx, int cy, int cz, Range* out) const {
  int n = 0;
  const int x0 = cx > 1 ? cx - 1 : 0;
  const int x1 = cx + 1 < nx_ ? cx + 1 : nx_ - 1;
  if (cx + 1 < 0 || cx - 1 >= nx_) return 0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = cz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= ny_) continue;
      // Cells x0..x1 in one row are contiguous in the packed order.
      const std::uint32_t first = offsets_[cellIndex(x0, y, z)];
      const std::uint32_t end = offsets_[cellIndex(x1, y, z) + 1];
      if (end > first) out[n++] = Range{first, end - first};
    }
  }
  return n;
}

bool NeighborGrid::cellCoords(const Vec3& query, int& cx, int& cy, int& cz) const {
  // Compute floor coords as doubles first: far-away queries would
  // overflow int, but they also can't overlap the box.
  const double fx = std::floor((query.x - origin_.x) / cell_);
  const double fy = std::floor((query.y - origin_.y) / cell_);
  const double fz = std::floor((query.z - origin_.z) / cell_);
  if (fx < -1.0 || fx > static_cast<double>(nx_) || fy < -1.0 || fy > static_cast<double>(ny_) ||
      fz < -1.0 || fz > static_cast<double>(nz_)) {
    return false;
  }
  cx = static_cast<int>(fx);
  cy = static_cast<int>(fy);
  cz = static_cast<int>(fz);
  return true;
}

int NeighborGrid::queryRanges(const Vec3& query, Range* out) const {
  if (order_.empty()) return 0;
  int cx, cy, cz;
  if (!cellCoords(query, cx, cy, cz)) return 0;
  if (!neighborStart_.empty() && cx >= 0 && cx < nx_ && cy >= 0 && cy < ny_ && cz >= 0 &&
      cz < nz_) {
    const std::size_t c = cellIndex(cx, cy, cz);
    const std::uint32_t first = neighborStart_[c];
    const std::uint32_t end = neighborStart_[c + 1];
    for (std::uint32_t k = first; k < end; ++k) out[k - first] = neighborRanges_[k];
    return static_cast<int>(end - first);
  }
  return gatherRanges(cx, cy, cz, out);
}

std::vector<std::size_t> NeighborGrid::near(const Vec3& query) const {
  std::vector<std::size_t> out;
  forEachNear(query, [&out](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace dqndock::metadock
