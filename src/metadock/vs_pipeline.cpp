#include "src/metadock/vs_pipeline.hpp"

#include <algorithm>

#include "src/common/csv.hpp"
#include "src/common/stopwatch.hpp"

namespace dqndock::metadock {

bool hitOrderBefore(const ScreeningHit& a, const ScreeningHit& b) {
  if (a.refinedScore != b.refinedScore) return a.refinedScore > b.refinedScore;
  return a.ligandIndex < b.ligandIndex;
}

Rng ligandScreenStream(std::uint64_t seed, std::uint64_t globalIndex) {
  // A per-index derivation (not sequential split()) so the stream is a
  // pure function of (seed, index): shards of any size reproduce it.
  const std::uint64_t mixed = seed ^ (0x9e3779b97f4a7c15ULL * (globalIndex + 1));
  return Rng(mixed);
}

ScreeningReport screenLibrary(const chem::Molecule& receptor,
                              const std::vector<chem::Molecule>& library,
                              ScreeningOptions options, ThreadPool* pool) {
  return screenLibrarySlice(receptor, library, 0, options, pool);
}

ScreeningReport screenLibrarySlice(const chem::Molecule& receptor,
                                   const std::vector<chem::Molecule>& slice,
                                   std::size_t globalOffset, ScreeningOptions options,
                                   ThreadPool* pool) {
  ScreeningReport report;
  if (slice.empty()) return report;
  Stopwatch clock;

  // The receptor model (and its grid) is shared read-only by every job.
  const ReceptorModel receptorModel(receptor, options.scoringCutoff);
  ScoringOptions sopts;
  sopts.cutoff = options.scoringCutoff;
  sopts.useGrid = options.scoringCutoff > 0.0;

  // Deterministic per-ligand streams regardless of scheduling or shard
  // layout: each ligand's stream is keyed by its global library index.
  std::vector<Rng> streams;
  streams.reserve(slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i) {
    streams.push_back(ligandScreenStream(options.seed, globalOffset + i));
  }

  std::vector<ScreeningHit> hits(slice.size());
  auto screenOne = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const LigandModel ligand(slice[i]);
      const ScoringFunction scoring(receptorModel, ligand, sopts);
      // Serial evaluator inside a job; parallelism is across ligands.
      PoseEvaluator evaluator(scoring, nullptr);
      MetaheuristicParams params = options.search;
      params.maxEvaluations = options.evaluationsPerLigand;
      MetaheuristicEngine engine(evaluator, params);
      const MetaheuristicResult searched = engine.run(streams[i]);

      ScreeningHit hit;
      hit.ligandName = slice[i].name();
      hit.ligandIndex = globalOffset + i;
      hit.atoms = slice[i].atomCount();
      hit.bestScore = searched.best.score;
      hit.bestPose = searched.best.pose;
      hit.evaluations = searched.evaluations;
      hit.refinedScore = hit.bestScore;

      if (options.refineWithGradient) {
        const ScoringGradient gradient(receptorModel, ligand, sopts);
        const MinimizeResult refined = minimizePose(scoring, gradient, searched.best.pose);
        if (refined.finalScore > hit.refinedScore) {
          hit.refinedScore = refined.finalScore;
          hit.bestPose = refined.pose;
        }
      }
      if (options.clusterModes) {
        // Cluster the best pose against a handful of quick re-runs to
        // count distinct binding modes cheaply.
        std::vector<Candidate> finals;
        finals.push_back({hit.bestPose, hit.refinedScore});
        MetaheuristicParams quick = params;
        quick.maxEvaluations = std::max<std::size_t>(200, params.maxEvaluations / 8);
        for (int extra = 0; extra < 3; ++extra) {
          MetaheuristicEngine again(evaluator, quick);
          finals.push_back(again.run(streams[i]).best);
        }
        ClusterOptions copts;
        copts.rmsdThreshold = options.clusterRmsd;
        hit.bindingModes = clusterPoses(ligand, finals, copts).size();
      }
      hits[i] = std::move(hit);
    }
  };
  if (pool) {
    pool->parallelFor(0, slice.size(), screenOne);
  } else {
    screenOne(0, slice.size());
  }

  std::sort(hits.begin(), hits.end(), hitOrderBefore);
  for (const auto& hit : hits) {
    if (hit.refinedScore > options.hitThreshold) ++report.hitCount;
    report.totalEvaluations += hit.evaluations;
  }
  report.ranked = std::move(hits);
  report.hitRate = static_cast<double>(report.hitCount) / report.ranked.size();
  report.totalSeconds = clock.seconds();
  return report;
}

ScreeningReport mergeScreeningReports(const std::vector<ScreeningReport>& parts,
                                      std::size_t librarySize, std::size_t topK) {
  ScreeningReport merged;
  for (const ScreeningReport& part : parts) {
    merged.ranked.insert(merged.ranked.end(), part.ranked.begin(), part.ranked.end());
    merged.hitCount += part.hitCount;
    merged.totalEvaluations += part.totalEvaluations;
    merged.totalSeconds += part.totalSeconds;
  }
  std::sort(merged.ranked.begin(), merged.ranked.end(), hitOrderBefore);
  if (topK > 0 && merged.ranked.size() > topK) merged.ranked.resize(topK);
  merged.hitRate =
      librarySize == 0 ? 0.0 : static_cast<double>(merged.hitCount) / librarySize;
  return merged;
}

void writeScreeningCsv(const std::string& path, const ScreeningReport& report) {
  CsvWriter csv(path, {"rank", "ligand", "atoms", "best_score", "refined_score", "binding_modes",
                       "evaluations"});
  for (std::size_t rank = 0; rank < report.ranked.size(); ++rank) {
    const ScreeningHit& hit = report.ranked[rank];
    csv.rowStrings({std::to_string(rank + 1), hit.ligandName, std::to_string(hit.atoms),
                    std::to_string(hit.bestScore), std::to_string(hit.refinedScore),
                    std::to_string(hit.bindingModes), std::to_string(hit.evaluations)});
  }
}

}  // namespace dqndock::metadock
