#pragma once

/// \file evaluator.hpp
/// Batched pose evaluation: METADOCK scores the ligand "in millions of
/// positions" per screening run, so the population loop of the
/// metaheuristic schema fans whole pose batches across the thread pool
/// (per-worker scratch buffers reused across batches, zero allocation
/// per pose). Each worker chunk runs ScoringFunction::scoreBatch — the
/// pose-batched SoA kernel that sweeps the receptor once per tile of
/// poses — so callers get the batched speedup without code changes.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

class PoseEvaluator {
 public:
  /// `pool` may be nullptr for serial evaluation. The evaluator keeps a
  /// running count of scoring-function invocations (the "evaluations"
  /// budget metaheuristics are compared on).
  PoseEvaluator(const ScoringFunction& scoring, ThreadPool* pool);

  /// Score one pose.
  double evaluate(const Pose& pose);

  /// Score a batch; results align with `poses`. Parallel across poses.
  std::vector<double> evaluateBatch(std::span<const Pose> poses);

  /// Total scoring-function invocations so far.
  std::size_t evaluationCount() const { return evals_.load(std::memory_order_relaxed); }
  void resetEvaluationCount() { evals_.store(0, std::memory_order_relaxed); }

  const ScoringFunction& scoring() const { return scoring_; }

 private:
  using Scratch = ScoringFunction::BatchScratch;

  /// Pop a scratch buffer from the free list (or create one). Buffers
  /// persist across evaluateBatch calls, so each worker chunk reuses a
  /// warm allocation instead of growing fresh lane vectors. A free list
  /// (not thread-indexed slots) keeps nested work-helping safe: a worker
  /// that picks up a second chunk mid-wait simply pops a different
  /// buffer.
  std::unique_ptr<Scratch> acquireScratch();
  void releaseScratch(std::unique_ptr<Scratch> scratch);

  const ScoringFunction& scoring_;
  ThreadPool* pool_;
  Scratch scratch_;  ///< serial-path scratch buffer
  std::atomic<std::size_t> evals_{0};
  std::mutex scratchMu_;
  std::vector<std::unique_ptr<Scratch>> freeScratch_;
};

}  // namespace dqndock::metadock
