#pragma once

/// \file evaluator.hpp
/// Batched pose evaluation: METADOCK scores the ligand "in millions of
/// positions" per screening run, so the population loop of the
/// metaheuristic schema fans whole pose batches across the thread pool
/// (one scratch coordinate buffer per worker, zero allocation per pose).

#include <atomic>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {

class PoseEvaluator {
 public:
  /// `pool` may be nullptr for serial evaluation. The evaluator keeps a
  /// running count of scoring-function invocations (the "evaluations"
  /// budget metaheuristics are compared on).
  PoseEvaluator(const ScoringFunction& scoring, ThreadPool* pool);

  /// Score one pose.
  double evaluate(const Pose& pose);

  /// Score a batch; results align with `poses`. Parallel across poses.
  std::vector<double> evaluateBatch(std::span<const Pose> poses);

  /// Total scoring-function invocations so far.
  std::size_t evaluationCount() const { return evals_.load(std::memory_order_relaxed); }
  void resetEvaluationCount() { evals_.store(0, std::memory_order_relaxed); }

  const ScoringFunction& scoring() const { return scoring_; }

 private:
  const ScoringFunction& scoring_;
  ThreadPool* pool_;
  std::vector<Vec3> scratch_;  ///< serial-path scratch buffer
  std::atomic<std::size_t> evals_{0};
};

}  // namespace dqndock::metadock
