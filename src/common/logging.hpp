#pragma once

/// \file logging.hpp
/// Lightweight leveled logger. Thread-safe; writes to stderr. Benches and
/// long training runs use it for progress lines without dragging in a
/// logging framework dependency.

#include <sstream>
#include <string>

namespace dqndock {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one formatted line (timestamp, level, message) to stderr.
void logMessage(LogLevel level, const std::string& msg);

namespace detail {
/// Checks the level once at construction: when the line is below the
/// global threshold every operator<< is a no-op, so disabled debug logs
/// on hot paths (e.g. the serving request loop) cost a branch, not a
/// format.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= logLevel()) {}
  ~LogLine() {
    if (enabled_) logMessage(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine logDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine logError() { return detail::LogLine(LogLevel::kError); }

}  // namespace dqndock
