#pragma once

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generator.
///
/// Every stochastic component (synthetic scenario builder, metaheuristics,
/// epsilon-greedy exploration, replay sampling, weight init) takes an
/// explicit Rng so whole training runs are reproducible from one seed and
/// parallel workers can draw from independent streams via split().

#include <cmath>
#include <cstdint>
#include <limits>

namespace dqndock {

/// xoshiro256++ generator (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to spread low-entropy seeds across the state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniformInt(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double gaussian() {
    if (hasSpare_) {
      hasSpare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Random unit vector, uniform on the sphere.
  template <typename V>
  V unitVector() {
    const double z = uniform(-1.0, 1.0);
    const double phi = uniform(0.0, 6.283185307179586);
    const double r = std::sqrt(1.0 - z * z);
    return V{r * std::cos(phi), r * std::sin(phi), z};
  }

  /// Derive an independent child stream (e.g. one per worker thread).
  Rng split() { return Rng((*this)() ^ 0xdeadbeefcafef00dULL); }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool hasSpare_ = false;
};

}  // namespace dqndock
