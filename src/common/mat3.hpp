#pragma once

/// \file mat3.hpp
/// Row-major 3x3 matrix used for rigid-body rotation of ligand poses.

#include <array>
#include <cmath>

#include "src/common/vec3.hpp"

namespace dqndock {

/// Row-major 3x3 matrix. Default-constructs to identity.
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static constexpr Mat3 identity() { return Mat3{}; }

  double& operator()(int r, int c) { return m[static_cast<std::size_t>(r * 3 + c)]; }
  double operator()(int r, int c) const { return m[static_cast<std::size_t>(r * 3 + c)]; }

  Vec3 operator*(const Vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        double s = 0.0;
        for (int k = 0; k < 3; ++k) s += (*this)(i, k) * o(k, j);
        r(i, j) = s;
      }
    return r;
  }

  Mat3 transposed() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r(i, j) = (*this)(j, i);
    return r;
  }

  double trace() const { return m[0] + m[4] + m[8]; }

  /// Rotation about an arbitrary (not necessarily unit) axis by `angleRad`,
  /// via Rodrigues' formula. A zero axis yields the identity.
  static Mat3 rotationAboutAxis(const Vec3& axis, double angleRad) {
    const Vec3 u = axis.normalized();
    if (u.norm2() == 0.0) return identity();
    const double c = std::cos(angleRad);
    const double s = std::sin(angleRad);
    const double t = 1.0 - c;
    Mat3 r;
    r(0, 0) = c + u.x * u.x * t;
    r(0, 1) = u.x * u.y * t - u.z * s;
    r(0, 2) = u.x * u.z * t + u.y * s;
    r(1, 0) = u.y * u.x * t + u.z * s;
    r(1, 1) = c + u.y * u.y * t;
    r(1, 2) = u.y * u.z * t - u.x * s;
    r(2, 0) = u.z * u.x * t - u.y * s;
    r(2, 1) = u.z * u.y * t + u.x * s;
    r(2, 2) = c + u.z * u.z * t;
    return r;
  }
};

}  // namespace dqndock
