#include "src/common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace dqndock {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mu;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& msg) {
  if (level < logLevel()) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const double secs =
      static_cast<double>(std::chrono::duration_cast<std::chrono::milliseconds>(now).count()) /
      1000.0;
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%.3f] %s %s\n", secs, levelName(level), msg.c_str());
}

}  // namespace dqndock
