#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace dqndock {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  cv_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock lock(mu_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mu_);
      if (--inFlight_ == 0) idleCv_.notify_all();
    }
  }
}

bool ThreadPool::tryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    std::lock_guard lock(mu_);
    if (--inFlight_ == 0) idleCv_.notify_all();
  }
  return true;
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t, std::size_t)>& fn) {
  parallelFor(begin, end, threadCount() + 1, fn);
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end, std::size_t maxParts,
                             const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min({n, threadCount() + 1, std::max<std::size_t>(1, maxParts)});
  if (parts <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  // The caller runs the first chunk itself; remaining chunks go to the
  // pool. While waiting it helps drain the queue, so nested parallelFor
  // calls from worker threads cannot deadlock.
  std::atomic<std::size_t> remaining{0};
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t lo = begin + p * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) continue;
    remaining.fetch_add(1, std::memory_order_relaxed);
    submit([&fn, lo, hi, &remaining] {
      fn(lo, hi);
      remaining.fetch_sub(1, std::memory_order_release);
    });
  }
  fn(begin, std::min(end, begin + chunk));
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (!tryRunOneTask()) std::this_thread::yield();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dqndock
