#pragma once

/// \file thread_pool.hpp
/// Work-sharing thread pool with a blocking parallel-for.
///
/// This is the CPU stand-in for METADOCK's GPU executor: the scoring
/// function fans receptor-atom tiles out across the pool, and the
/// metaheuristic schema evaluates pose populations in parallel. The pool
/// is created once and reused (no per-call thread spawn), following the
/// OpenMP worksharing model.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dqndock {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void waitIdle();

  /// Static-schedule parallel for over [begin, end): the range is split
  /// into ~threadCount() contiguous chunks, each handed to a worker as
  /// fn(chunkBegin, chunkEnd). Blocks until all chunks complete. The
  /// calling thread also executes one chunk, so the pool never deadlocks
  /// when parallelFor is (accidentally) called from a worker.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Same, but split into at most `maxParts` chunks (>= 1). Callers that
  /// know the per-chunk work is too small to amortize fan-out overhead
  /// (e.g. the NN GEMMs at paper shapes, where every extra worker
  /// re-streams the whole B matrix) cap the partition count instead of
  /// going fully serial; maxParts == 1 degenerates to an inline call.
  void parallelFor(std::size_t begin, std::size_t end, std::size_t maxParts,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed with default size).
  static ThreadPool& global();

 private:
  void workerLoop();
  /// Pop and run one queued task if available; returns false when the
  /// queue is empty. Lets threads blocked in parallelFor() help drain the
  /// queue, which makes nested parallelFor deadlock-free.
  bool tryRunOneTask();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idleCv_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace dqndock
