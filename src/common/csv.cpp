#include "src/common/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace dqndock {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  rowStrings(header);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::rowStrings(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    const bool quote = cells[i].find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      out_ << '"';
      for (char c : cells[i]) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << cells[i];
    }
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace dqndock
