#include "src/common/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace dqndock {

namespace {

[[noreturn]] void throwBadValue(const std::string& flag, std::string_view text,
                                const char* expected) {
  throw CliError("--" + flag + ": expected " + expected + ", got \"" + std::string(text) +
                 "\"");
}

}  // namespace

std::optional<long> tryParseLong(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);  // strtol needs a terminator
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<unsigned long> tryParseUnsigned(std::string_view text) {
  // strtoul silently accepts "-3" (wraps); require a non-negative long.
  const auto value = tryParseLong(text);
  if (!value || *value < 0) return std::nullopt;
  return static_cast<unsigned long>(*value);
}

std::optional<double> tryParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<std::vector<std::size_t>> tryParseSizeList(std::string_view spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto value = tryParseUnsigned(item);
    if (!value || *value == 0) return std::nullopt;
    out.push_back(static_cast<std::size_t>(*value));
  }
  return out;
}

std::vector<std::size_t> parseSizeList(std::string_view spec, const std::string& flag) {
  auto parsed = tryParseSizeList(spec);
  if (!parsed) throwBadValue(flag, spec, "a comma-separated list of positive integers");
  return std::move(*parsed);
}

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare switch
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::getString(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::getInt(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto value = tryParseLong(it->second);
  if (!value) throwBadValue(name, it->second, "an integer");
  return *value;
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto value = tryParseDouble(it->second);
  if (!value) throwBadValue(name, it->second, "a number");
  return *value;
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" || it->second.empty();
}

unsigned CliArgs::getUint16(const std::string& name, unsigned fallback) const {
  const long value = getInt(name, static_cast<long>(fallback));
  if (value < 0 || value > 65535) {
    throwBadValue(name, getString(name, ""), "an integer in [0, 65535]");
  }
  return static_cast<unsigned>(value);
}

}  // namespace dqndock
