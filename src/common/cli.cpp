#include "src/common/cli.hpp"

#include <cstdlib>

namespace dqndock {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare switch
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::getString(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::getInt(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" || it->second.empty();
}

}  // namespace dqndock
