#pragma once

/// \file running_stats.hpp
/// Welford online mean/variance plus min/max. Used for per-episode
/// Q-value tracking (Figure 4) and benchmark summaries.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace dqndock {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dqndock
