#pragma once

/// \file csv.hpp
/// Small CSV writer used by the training harness and benches to dump
/// learning curves (Figure 4 series) and sweep results.

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace dqndock {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; values are written with full double precision.
  void row(const std::vector<double>& values);

  /// Append one row of preformatted cells (quoted if they contain commas).
  void rowStrings(const std::vector<std::string>& cells);

  void flush();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace dqndock
