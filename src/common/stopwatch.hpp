#pragma once

/// \file stopwatch.hpp
/// Monotonic wall-clock stopwatch for benchmark harnesses.

#include <chrono>

namespace dqndock {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dqndock
