#pragma once

/// \file quat.hpp
/// Unit quaternion for composing ligand orientations without drift.
/// METADOCK's rotational degrees of freedom are stored as a quaternion so
/// that thousands of incremental 0.5-degree rotations stay orthonormal.

#include <cmath>

#include "src/common/mat3.hpp"
#include "src/common/vec3.hpp"

namespace dqndock {

/// Quaternion (w, x, y, z). Identity by default.
struct Quat {
  double w = 1.0, x = 0.0, y = 0.0, z = 0.0;

  constexpr Quat() = default;
  constexpr Quat(double w_, double x_, double y_, double z_) : w(w_), x(x_), y(y_), z(z_) {}

  static constexpr Quat identity() { return {}; }

  /// Quaternion representing a rotation of `angleRad` about `axis`.
  static Quat fromAxisAngle(const Vec3& axis, double angleRad) {
    const Vec3 u = axis.normalized();
    const double h = angleRad * 0.5;
    const double s = std::sin(h);
    return {std::cos(h), u.x * s, u.y * s, u.z * s};
  }

  Quat operator*(const Quat& o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  Quat conjugate() const { return {w, -x, -y, -z}; }

  double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

  Quat normalized() const {
    const double n = norm();
    if (n < 1e-300) return identity();
    return {w / n, x / n, y / n, z / n};
  }

  /// Rotate a vector by this (assumed unit) quaternion.
  Vec3 rotate(const Vec3& v) const {
    // v' = v + 2*q_vec x (q_vec x v + w*v)
    const Vec3 qv{x, y, z};
    const Vec3 t = qv.cross(v) * 2.0;
    return v + t * w + qv.cross(t);
  }

  /// Equivalent rotation matrix (assumes unit quaternion).
  Mat3 toMatrix() const {
    Mat3 r;
    const double xx = x * x, yy = y * y, zz = z * z;
    const double xy = x * y, xz = x * z, yz = y * z;
    const double wx = w * x, wy = w * y, wz = w * z;
    r(0, 0) = 1 - 2 * (yy + zz);
    r(0, 1) = 2 * (xy - wz);
    r(0, 2) = 2 * (xz + wy);
    r(1, 0) = 2 * (xy + wz);
    r(1, 1) = 1 - 2 * (xx + zz);
    r(1, 2) = 2 * (yz - wx);
    r(2, 0) = 2 * (xz - wy);
    r(2, 1) = 2 * (yz + wx);
    r(2, 2) = 1 - 2 * (xx + yy);
    return r;
  }

  /// Angle of the rotation this quaternion encodes, in [0, pi].
  double angle() const {
    const double cw = std::fabs(w) > 1.0 ? 1.0 : std::fabs(w);
    return 2.0 * std::acos(cw);
  }
};

}  // namespace dqndock
