#pragma once

/// \file vec3.hpp
/// Minimal 3-D vector type used throughout the chemistry and docking
/// substrates. Kept as a trivially-copyable aggregate so arrays of Vec3
/// can be memcpy'd, hashed into spatial grids, and streamed to disk.

#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <ostream>

namespace dqndock {

/// 3-component double-precision vector (positions, directions, forces).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; returns zero vector for ~zero input.
  Vec3 normalized() const {
    const double n = norm();
    return n > 1e-300 ? (*this) / n : Vec3{};
  }

  /// Component-wise minimum.
  constexpr Vec3 min(const Vec3& o) const {
    return {x < o.x ? x : o.x, y < o.y ? y : o.y, z < o.z ? z : o.z};
  }
  /// Component-wise maximum.
  constexpr Vec3 max(const Vec3& o) const {
    return {x > o.x ? x : o.x, y > o.y ? y : o.y, z > o.z ? z : o.z};
  }

  double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
inline double distance2(const Vec3& a, const Vec3& b) { return (a - b).norm2(); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace dqndock
