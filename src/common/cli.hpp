#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for the examples and benches.
/// Supports --name=value and --name value forms plus boolean switches.
///
/// Numeric lookups are CHECKED: a flag that is present but does not
/// parse as a whole token ("--layers 128,abc", "--port 80x") throws
/// CliError instead of silently truncating (strtol) or aborting
/// (std::stoul). Example mains catch CliError, print their usage line
/// and exit 1 — malformed user input must never terminate via an
/// uncaught exception.

#include <cstddef>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dqndock {

/// A command-line value failed validation. what() names the flag and the
/// offending text so the caller's usage message can be specific.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict whole-token parses: leading/trailing junk ("12x", "1 2", "")
/// yields nullopt, as do out-of-range values. Base 10 only.
std::optional<long> tryParseLong(std::string_view text);
std::optional<unsigned long> tryParseUnsigned(std::string_view text);
std::optional<double> tryParseDouble(std::string_view text);

/// Comma-separated list of positive sizes ("64,64"); empty items are
/// skipped ("64,,64" == "64,64"). nullopt when any item fails to parse.
std::optional<std::vector<std::size_t>> tryParseSizeList(std::string_view spec);

/// tryParseSizeList that throws CliError naming `flag` on bad input —
/// the shared checked replacement for the ad-hoc std::stoul loops the
/// example CLIs used for --hidden/--layers specs.
std::vector<std::size_t> parseSizeList(std::string_view spec, const std::string& flag);

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string getString(const std::string& name, const std::string& fallback) const;
  /// Missing flag -> fallback; present but malformed -> CliError.
  long getInt(const std::string& name, long fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback) const;

  /// getInt constrained to [0, 65535] — ports and other small unsigned
  /// knobs; out-of-range values throw CliError rather than wrapping.
  unsigned getUint16(const std::string& name, unsigned fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dqndock
