#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for the examples and benches.
/// Supports --name=value and --name value forms plus boolean switches.

#include <map>
#include <string>
#include <vector>

namespace dqndock {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string getString(const std::string& name, const std::string& fallback) const;
  long getInt(const std::string& name, long fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dqndock
