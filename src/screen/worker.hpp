#pragma once

/// \file worker.hpp
/// ScreenWorker: the pulling side of the distributed screening service.
/// A worker connects to the coordinator, fetches the job config (HELLO),
/// then loops: lease a shard, screen it chunk-by-chunk through granted
/// windows, and submit the shard's local top-K as one RESULT.
///
/// The worker may only screen indices the coordinator has granted; each
/// PROGRESS both reports the completed frontier and claims the next
/// chunk, so it doubles as the heartbeat. When a claim comes back with
/// grant_end == done the shard has no more indices (possibly because its
/// tail was stolen) and the worker submits [begin, done). Determinism is
/// carried by metadock::ligandScreenStream — every granted window is
/// screened with per-ligand RNG streams keyed by global index, so any
/// shard/worker arrangement reproduces the single-process run bit for
/// bit.

#include <cstdint>
#include <string>

#include "src/common/thread_pool.hpp"
#include "src/serve/tcp.hpp"

namespace dqndock::screen {

struct WorkerOptions {
  std::string id = "worker";        ///< reported in HELLO/LEASE; shows up in logs
  std::size_t maxShards = 0;        ///< stop after completing this many (0 = until FINISHED)
  /// Fault-injection hook: after screening this many granted chunks in
  /// total, drop the connection and return without submitting — to the
  /// coordinator this is indistinguishable from a worker crash. 0 = never.
  std::size_t abortAfterChunks = 0;
  serve::RetryPolicy retry = serve::RetryPolicy::patient();
  ThreadPool* pool = nullptr;       ///< optional intra-worker screening parallelism
};

struct WorkerStats {
  std::size_t shardsCompleted = 0;  ///< RESULTs accepted by the coordinator
  std::size_t ligandsScreened = 0;
  std::size_t chunksScreened = 0;
  std::size_t abandoned = 0;        ///< shards dropped (lease lost mid-work)
  std::size_t staleResults = 0;     ///< RESULTs rejected as stale
  bool finished = false;            ///< saw FINISHED (library fully covered)
  bool aborted = false;             ///< abortAfterChunks fired
  std::string error;                ///< non-empty when the loop ended on a failure
};

class ScreenWorker {
 public:
  ScreenWorker(std::uint16_t port, WorkerOptions options = {},
               std::string host = "127.0.0.1");

  /// Run the lease-screen-submit loop until FINISHED, maxShards,
  /// abortAfterChunks, or an unrecoverable error (recorded in
  /// stats.error rather than thrown, so supervisors can inspect it).
  WorkerStats run();

 private:
  std::uint16_t port_;
  std::string host_;
  WorkerOptions options_;
};

}  // namespace dqndock::screen
