#pragma once

/// \file protocol.hpp
/// Wire vocabulary and shared job configuration of the distributed
/// virtual-screening service. The coordinator serves, workers pull:
///
///   HELLO    worker=<id>                         -> CONFIG (job config)
///   LEASE    worker=<id>                         -> SHARD | WAIT | FINISHED
///   PROGRESS worker shard lease done claim       -> GRANT | ABANDON
///   RESULT   worker shard lease begin end ...    -> OK | STALE
///   STATUS                                       -> OK (stats)
///
/// Shard execution uses *granted windows*: a worker may only screen
/// ligands the coordinator has explicitly granted ([cursor, grant_end)),
/// and asks for the next window with each PROGRESS — which doubles as
/// the heartbeat. Because every extension passes through the
/// coordinator, shrinking a straggler shard (work stealing) needs no
/// extra message: the coordinator trims shard.end and the next grant
/// simply stops there, so two workers can never screen the same ligand
/// index under live leases.
///
/// All frames ride the serve/wire.hpp length-prefixed protocol and keep
/// its ProtocolError discipline: malformed payloads are framing
/// violations, distinct from transport failures.

#include <cstdint>
#include <string>

#include "src/chem/molecule.hpp"
#include "src/metadock/metaheuristic.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::screen {

// Message types (requests and replies).
inline constexpr const char* kMsgHello = "HELLO";
inline constexpr const char* kMsgConfig = "CONFIG";
inline constexpr const char* kMsgLease = "LEASE";
inline constexpr const char* kMsgShard = "SHARD";
inline constexpr const char* kMsgWait = "WAIT";
inline constexpr const char* kMsgFinished = "FINISHED";
inline constexpr const char* kMsgProgress = "PROGRESS";
inline constexpr const char* kMsgGrant = "GRANT";
inline constexpr const char* kMsgAbandon = "ABANDON";
inline constexpr const char* kMsgResult = "RESULT";
inline constexpr const char* kMsgStale = "STALE";
inline constexpr const char* kMsgStatus = "STATUS";

/// Everything a worker needs to reproduce the coordinator's screening
/// job bit-for-bit: the shared library file, the receptor source, and
/// the result-affecting screening options. The search strategy travels
/// as a named METADOCK preset (random-search / local-search /
/// monte-carlo / genetic) — the presets are canonical, so a name pins
/// every numeric knob.
struct ScreenJobConfig {
  std::string libraryPath;
  std::size_t librarySize = 0;  ///< filled by the coordinator

  /// Receptor source: a synthetic scenario preset ("tiny" | "paper2bsm",
  /// built with `scenarioSeed`), or a structure file (.pdb/.mol2) when
  /// `receptorFile` is non-empty (it then overrides `scenario`).
  std::string scenario = "tiny";
  std::uint64_t scenarioSeed = 2018;
  std::string receptorFile;

  std::string searchPreset = "monte-carlo";
  std::size_t evaluationsPerLigand = 400;
  bool refineWithGradient = false;
  bool clusterModes = false;
  double clusterRmsd = 2.0;
  double scoringCutoff = 12.0;
  double hitThreshold = 0.0;
  std::uint64_t seed = 2020;

  std::size_t topK = 32;      ///< hits kept per shard result and in the final report
  std::size_t shardSize = 64; ///< ligands per shard at creation
  std::size_t chunkSize = 8;  ///< ligands per granted window (heartbeat cadence)
  double leaseTimeoutSeconds = 10.0;

  /// The metadock::ScreeningOptions this config pins down.
  metadock::ScreeningOptions screeningOptions() const;
};

/// Resolve a METADOCK search preset by name; throws std::runtime_error
/// on an unknown name.
metadock::MetaheuristicParams searchPresetByName(const std::string& name);

/// Config <-> CONFIG message. configFromMessage throws
/// serve::ProtocolError when required fields are missing or invalid.
serve::Message configToMessage(const ScreenJobConfig& config);
ScreenJobConfig configFromMessage(const serve::Message& msg);

/// One token (no spaces/newlines) fingerprinting every result-affecting
/// field. A journal written under one fingerprint must never seed a
/// resume under another — the merged report would silently mix
/// incompatible runs.
std::string configFingerprint(const ScreenJobConfig& config);

/// Load the receptor this config names (scenario surrogate or structure
/// file by extension). Throws std::runtime_error on failure.
chem::Molecule loadReceptor(const ScreenJobConfig& config);

}  // namespace dqndock::screen
