#include "src/screen/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/chem/library_io.hpp"
#include "src/common/logging.hpp"
#include "src/screen/hit_codec.hpp"

namespace dqndock::screen {

using serve::Message;

ScreenCoordinator::ScreenCoordinator(ScreenJobConfig config, CoordinatorOptions options)
    : config_(std::move(config)), options_(std::move(options)), merger_(config_.topK) {
  // The library file is the shared source of truth; its count defines the
  // index space every shard, journal record and worker agrees on.
  chem::LigandLibraryReader reader(config_.libraryPath);
  config_.librarySize = reader.size();

  const std::string fingerprint = configFingerprint(config_);

  // Resume: accept journaled shards as already-covered ranges.
  std::vector<std::pair<std::size_t, std::size_t>> covered;
  bool journalExists = false;
  if (!options_.journalPath.empty() && options_.resume) {
    ScreenJournal::LoadResult loaded = ScreenJournal::load(options_.journalPath);
    journalExists = loaded.exists;
    if (loaded.exists) {
      if (loaded.fingerprint != fingerprint) {
        throw std::runtime_error(
            "ScreenCoordinator: journal " + options_.journalPath +
            " was written by an incompatible run (fingerprint mismatch); "
            "refusing to resume");
      }
      std::sort(loaded.records.begin(), loaded.records.end(),
                [](const ShardRecord& a, const ShardRecord& b) { return a.begin < b.begin; });
      std::size_t frontier = 0;
      for (ShardRecord& record : loaded.records) {
        // Overlapping or out-of-range records would double-count
        // aggregates; a well-formed journal never has them, so skip
        // defensively rather than corrupt the resumed report.
        if (record.begin < frontier || record.end > config_.librarySize) continue;
        merger_.add(record.hits);
        hitCount_ += record.hitCount;
        totalEvaluations_ += record.evaluations;
        stats_.ligandsDone += record.end - record.begin;
        ++stats_.shardsResumed;
        ++stats_.shardsTotal;
        covered.emplace_back(record.begin, record.end);
        frontier = record.end;
      }
      if (loaded.skippedLines > 0) {
        logWarn() << "ScreenCoordinator: ignored " << loaded.skippedLines
                  << " torn/garbled journal line(s) in " << options_.journalPath;
      }
    }
  }
  if (!options_.journalPath.empty()) {
    const bool truncate = !(options_.resume && journalExists);
    journal_ = std::make_unique<ScreenJournal>(options_.journalPath, fingerprint, truncate);
  }

  // Queue shards over the uncovered complement of [0, librarySize).
  auto queueRange = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; s += config_.shardSize) {
      Shard shard;
      shard.id = nextShardId_++;
      shard.begin = s;
      shard.end = std::min(s + config_.shardSize, hi);
      shard.grantEnd = shard.begin;
      shards_.push_back(shard);
      ++stats_.shardsTotal;
    }
  };
  std::size_t pos = 0;
  for (const auto& [lo, hi] : covered) {
    queueRange(pos, lo);
    pos = hi;
  }
  queueRange(pos, config_.librarySize);
  done_ = stats_.ligandsDone == config_.librarySize;

  // Listener (loopback, same discipline as serve::TcpServer).
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw std::runtime_error("ScreenCoordinator: socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listenFd_);
    throw std::runtime_error(std::string("ScreenCoordinator: bind failed: ") +
                             std::strerror(errno));
  }
  if (::listen(listenFd_, 16) != 0) {
    ::close(listenFd_);
    throw std::runtime_error("ScreenCoordinator: listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptThread_ = std::thread([this] { acceptLoop(); });
  logInfo() << "ScreenCoordinator: " << config_.librarySize << " ligands, "
            << shards_.size() << " shard(s) queued (" << stats_.shardsResumed
            << " resumed), listening on 127.0.0.1:" << port_;
}

ScreenCoordinator::~ScreenCoordinator() { stop(); }

void ScreenCoordinator::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by halt()
    }
    std::lock_guard lock(mu_);
    if (halted_) {
      ::close(fd);
      continue;
    }
    connectionFds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

void ScreenCoordinator::handleConnection(int fd) {
  Message request;
  for (;;) {
    try {
      if (!serve::recvMessage(fd, request)) break;
    } catch (const std::exception&) {
      break;  // framing violation or transport failure — drop the peer
    }
    Message reply;
    try {
      reply = handleRequest(request);
    } catch (const std::exception& e) {
      reply = Message::error(e.what());
    }
    {
      std::lock_guard lock(mu_);
      ++stats_.requests;
    }
    try {
      serve::sendMessage(fd, reply);
    } catch (const std::exception&) {
      break;
    }
  }
  {
    std::lock_guard lock(mu_);
    std::erase(connectionFds_, fd);
  }
  ::close(fd);
}

Message ScreenCoordinator::handleRequest(const Message& request) {
  if (request.type == kMsgHello) {
    std::lock_guard lock(mu_);
    const std::string worker = request.get("worker", "anonymous");
    if (std::find(knownWorkers_.begin(), knownWorkers_.end(), worker) == knownWorkers_.end()) {
      knownWorkers_.push_back(worker);
      stats_.workersSeen = knownWorkers_.size();
    }
    return configToMessage(config_);
  }
  if (request.type == kMsgLease) return handleLease(request);
  if (request.type == kMsgProgress) return handleProgress(request);
  if (request.type == kMsgResult) return handleResult(request);
  if (request.type == kMsgStatus) return handleStatus();
  return Message::error("unknown request type: " + request.type);
}

void ScreenCoordinator::reclaimExpiredLeases() {
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::duration<double>(config_.leaseTimeoutSeconds);
  for (Shard& shard : shards_) {
    if (shard.status != ShardStatus::kLeased) continue;
    if (now - shard.lastBeat < timeout) continue;
    // Nothing from this shard was journaled (results arrive whole-shard),
    // so the full range goes back in the queue.
    logWarn() << "ScreenCoordinator: lease on shard " << shard.id << " [" << shard.begin
              << "," << shard.end << ") by '" << shard.worker << "' lapsed; re-queuing";
    shard.status = ShardStatus::kPending;
    shard.lease = 0;
    shard.worker.clear();
    shard.grantEnd = shard.begin;
    ++stats_.leasesExpired;
  }
}

ScreenCoordinator::Shard* ScreenCoordinator::findShard(std::uint64_t id) {
  for (Shard& shard : shards_) {
    if (shard.id == id) return &shard;
  }
  return nullptr;
}

ScreenCoordinator::Shard* ScreenCoordinator::splitStraggler() {
  // Steal the un-granted tail of the busiest leased shard. The split
  // point sits past the granted frontier, so the straggler's next claim
  // simply stops at its trimmed end — no message to it required, and no
  // index can be screened under two live leases.
  Shard* victim = nullptr;
  std::size_t bestRemaining = 0;
  for (Shard& shard : shards_) {
    if (shard.status != ShardStatus::kLeased) continue;
    const std::size_t remaining = shard.end - shard.grantEnd;
    if (remaining > bestRemaining) {
      bestRemaining = remaining;
      victim = &shard;
    }
  }
  if (victim == nullptr || bestRemaining < 2 * config_.chunkSize) return nullptr;
  const std::size_t mid = victim->grantEnd + (bestRemaining + 1) / 2;
  Shard stolen;
  stolen.id = nextShardId_++;
  stolen.begin = mid;
  stolen.end = victim->end;
  stolen.grantEnd = stolen.begin;
  victim->end = mid;
  ++stats_.shardsStolen;
  ++stats_.shardsTotal;
  logInfo() << "ScreenCoordinator: stole [" << stolen.begin << "," << stolen.end
            << ") from straggler shard " << victim->id << " (worker '" << victim->worker
            << "')";
  shards_.push_back(stolen);
  return &shards_.back();
}

Message ScreenCoordinator::leaseShard(Shard& shard, const std::string& worker) {
  shard.status = ShardStatus::kLeased;
  shard.lease = nextLease_++;
  shard.worker = worker;
  shard.lastBeat = std::chrono::steady_clock::now();
  shard.grantEnd = std::min(shard.begin + config_.chunkSize, shard.end);
  Message reply{kMsgShard, {}};
  reply.set("shard", shard.id)
      .set("lease", shard.lease)
      .set("begin", static_cast<std::uint64_t>(shard.begin))
      .set("end", static_cast<std::uint64_t>(shard.end))
      .set("grant_end", static_cast<std::uint64_t>(shard.grantEnd));
  return reply;
}

Message ScreenCoordinator::handleLease(const Message& request) {
  std::lock_guard lock(mu_);
  if (halted_) return Message::error("coordinator halted");
  if (done_) return Message{kMsgFinished, {}};
  reclaimExpiredLeases();
  const std::string worker = request.get("worker", "anonymous");
  for (Shard& shard : shards_) {
    if (shard.status == ShardStatus::kPending) return leaseShard(shard, worker);
  }
  if (Shard* stolen = splitStraggler()) return leaseShard(*stolen, worker);
  Message wait{kMsgWait, {}};
  const long retryMs = std::clamp<long>(
      static_cast<long>(config_.leaseTimeoutSeconds * 1000.0 / 4.0), 10, 500);
  wait.set("retry_ms", retryMs);
  return wait;
}

Message ScreenCoordinator::handleProgress(const Message& request) {
  std::lock_guard lock(mu_);
  if (halted_) return Message{kMsgAbandon, {}};
  const auto id = static_cast<std::uint64_t>(request.getInt("shard", 0));
  const auto lease = static_cast<std::uint64_t>(request.getInt("lease", 0));
  const auto done = static_cast<std::size_t>(request.getInt("done", 0));
  const auto claim = static_cast<std::size_t>(request.getInt("claim", 0));
  Shard* shard = findShard(id);
  if (shard == nullptr || shard->status != ShardStatus::kLeased || shard->lease != lease ||
      done > shard->grantEnd) {
    return Message{kMsgAbandon, {}};
  }
  shard->lastBeat = std::chrono::steady_clock::now();
  const std::size_t grant = std::min(std::max(claim, done), shard->end);
  shard->grantEnd = std::max(shard->grantEnd, grant);
  Message reply{kMsgGrant, {}};
  reply.set("grant_end", static_cast<std::uint64_t>(grant));
  return reply;
}

Message ScreenCoordinator::handleResult(const Message& request) {
  std::lock_guard lock(mu_);
  if (halted_) {
    // A halted coordinator must not accept (or journal) anything more —
    // haltAfterShards tests rely on the journal holding exactly N records.
    ++stats_.resultsStale;
    return Message{kMsgStale, {}};
  }
  const auto id = static_cast<std::uint64_t>(request.getInt("shard", 0));
  const auto lease = static_cast<std::uint64_t>(request.getInt("lease", 0));
  Shard* shard = findShard(id);
  if (shard == nullptr || shard->status != ShardStatus::kLeased || shard->lease != lease) {
    ++stats_.resultsStale;
    return Message{kMsgStale, {}};
  }
  ShardRecord record;
  record.begin = static_cast<std::size_t>(request.getInt("begin", 0));
  record.end = static_cast<std::size_t>(request.getInt("end", 0));
  record.hitCount = static_cast<std::size_t>(request.getInt("hit_count", 0));
  record.evaluations = static_cast<std::size_t>(request.getInt("evals", 0));
  if (record.begin != shard->begin || record.end != shard->end ||
      shard->grantEnd != shard->end) {
    // A result that does not cover exactly the shard's current range can
    // only come from a lease that raced a split — reject it; the range
    // stays owned and consistent.
    ++stats_.resultsStale;
    return Message{kMsgStale, {}};
  }
  const auto count = static_cast<std::size_t>(request.getInt("n", 0));
  for (std::size_t i = 0; i < count; ++i) {
    const std::string token = request.get("h" + std::to_string(i));
    if (token.empty()) return Message::error("RESULT missing hit field h" + std::to_string(i));
    try {
      record.hits.push_back(decodeHit(token));
    } catch (const std::exception& e) {
      return Message::error(std::string("RESULT hit decode failed: ") + e.what());
    }
  }
  recordResult(*shard, std::move(record));
  return Message::ok();
}

void ScreenCoordinator::recordResult(Shard& shard, ShardRecord record) {
  if (journal_) journal_->append(record);
  merger_.add(record.hits);
  hitCount_ += record.hitCount;
  totalEvaluations_ += record.evaluations;
  stats_.ligandsDone += record.end - record.begin;
  ++stats_.shardsDone;
  shard.status = ShardStatus::kDone;
  shard.lease = 0;
  if (stats_.ligandsDone == config_.librarySize) {
    done_ = true;
    doneCv_.notify_all();
    logInfo() << "ScreenCoordinator: all " << config_.librarySize << " ligands screened ("
              << stats_.shardsDone << " shards this run, " << stats_.shardsResumed
              << " resumed)";
  }
  if (options_.haltAfterShards > 0 && stats_.shardsDone >= options_.haltAfterShards &&
      !halted_) {
    // Simulated crash for checkpoint-resume tests: stop serving with
    // shards still outstanding, leaving only the journal behind.
    logWarn() << "ScreenCoordinator: haltAfterShards=" << options_.haltAfterShards
              << " reached; simulating coordinator crash";
    halted_ = true;
    if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
    for (const int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
    doneCv_.notify_all();
  }
}

Message ScreenCoordinator::handleStatus() const {
  std::lock_guard lock(mu_);
  Message reply = Message::ok();
  const double elapsed = clock_.seconds();
  reply.set("done", static_cast<long>(done_ ? 1 : 0))
      .set("halted", static_cast<long>(halted_ ? 1 : 0))
      .set("library_size", static_cast<std::uint64_t>(config_.librarySize))
      .set("ligands_done", static_cast<std::uint64_t>(stats_.ligandsDone))
      .set("shards_total", static_cast<std::uint64_t>(stats_.shardsTotal))
      .set("shards_done", static_cast<std::uint64_t>(stats_.shardsDone))
      .set("shards_resumed", static_cast<std::uint64_t>(stats_.shardsResumed))
      .set("shards_stolen", static_cast<std::uint64_t>(stats_.shardsStolen))
      .set("leases_expired", static_cast<std::uint64_t>(stats_.leasesExpired))
      .set("results_stale", static_cast<std::uint64_t>(stats_.resultsStale))
      .set("workers", static_cast<std::uint64_t>(stats_.workersSeen))
      .set("requests", stats_.requests)
      .set("elapsed_s", elapsed)
      .set("ligands_per_s", elapsed > 0.0 ? stats_.ligandsDone / elapsed : 0.0);
  return reply;
}

bool ScreenCoordinator::done() const {
  std::lock_guard lock(mu_);
  return done_;
}

bool ScreenCoordinator::halted() const {
  std::lock_guard lock(mu_);
  return halted_;
}

bool ScreenCoordinator::waitUntilDone(double timeoutSeconds) {
  std::unique_lock lock(mu_);
  const auto pred = [&] { return done_ || halted_; };
  if (timeoutSeconds > 0.0) {
    doneCv_.wait_for(lock, std::chrono::duration<double>(timeoutSeconds), pred);
  } else {
    doneCv_.wait(lock, pred);
  }
  return done_;
}

metadock::ScreeningReport ScreenCoordinator::report() const {
  std::lock_guard lock(mu_);
  metadock::ScreeningReport report;
  report.ranked = merger_.sorted();
  report.hitCount = hitCount_;
  report.totalEvaluations = totalEvaluations_;
  report.hitRate = config_.librarySize == 0
                       ? 0.0
                       : static_cast<double>(hitCount_) / config_.librarySize;
  report.totalSeconds = clock_.seconds();
  return report;
}

CoordinatorStats ScreenCoordinator::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void ScreenCoordinator::halt() {
  std::lock_guard lock(mu_);
  if (halted_) return;
  halted_ = true;
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  for (const int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
  doneCv_.notify_all();
}

void ScreenCoordinator::stop() {
  halt();
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

}  // namespace dqndock::screen
