#include "src/screen/journal.hpp"

#include <sstream>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/screen/hit_codec.hpp"

namespace dqndock::screen {

namespace {

constexpr const char* kHeader = "DQNDOCK-SCREEN-JOURNAL v1";

}  // namespace

ScreenJournal::LoadResult ScreenJournal::load(const std::string& path) {
  LoadResult result;
  std::ifstream in(path);
  if (!in) return result;

  std::string line;
  if (!std::getline(in, line) || line != kHeader) return result;
  if (!std::getline(in, line) || line.rfind("FINGERPRINT ", 0) != 0) return result;
  result.fingerprint = line.substr(12);
  result.exists = true;

  while (std::getline(in, line)) {
    // One record per line; anything that does not parse end-to-end —
    // including a torn final line from a killed coordinator — is skipped,
    // not fatal: losing one in-flight record only means its range gets
    // re-screened.
    if (line.rfind("SHARD ", 0) != 0) {
      ++result.skippedLines;
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    ShardRecord record;
    std::size_t n = 0;
    fields >> tag >> record.begin >> record.end >> record.hitCount >> record.evaluations >> n;
    if (!fields || record.end <= record.begin) {
      ++result.skippedLines;
      continue;
    }
    bool ok = true;
    record.hits.reserve(n);
    for (std::size_t i = 0; i < n && ok; ++i) {
      std::string token;
      if (!(fields >> token)) {
        ok = false;
        break;
      }
      try {
        record.hits.push_back(decodeHit(token));
      } catch (const std::exception&) {
        ok = false;
      }
    }
    std::string sentinel;
    if (!ok || !(fields >> sentinel) || sentinel != "END") {
      ++result.skippedLines;
      continue;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

ScreenJournal::ScreenJournal(const std::string& path, const std::string& fingerprint,
                             bool truncate)
    : path_(path) {
  const bool writeHeader = truncate || !load(path).exists;
  out_.open(path, writeHeader ? std::ios::trunc : std::ios::app);
  if (!out_) throw std::runtime_error("ScreenJournal: cannot open " + path);
  if (writeHeader) {
    out_ << kHeader << '\n' << "FINGERPRINT " << fingerprint << '\n';
    out_.flush();
    if (!out_) throw std::runtime_error("ScreenJournal: header write failed for " + path);
  }
}

void ScreenJournal::append(const ShardRecord& record) {
  out_ << "SHARD " << record.begin << ' ' << record.end << ' ' << record.hitCount << ' '
       << record.evaluations << ' ' << record.hits.size();
  for (const auto& hit : record.hits) out_ << ' ' << encodeHit(hit);
  out_ << " END\n";
  out_.flush();
  if (!out_) {
    logError() << "ScreenJournal: append failed for " << path_;
    throw std::runtime_error("ScreenJournal: append failed for " + path_);
  }
}

}  // namespace dqndock::screen
