#pragma once

/// \file coordinator.hpp
/// ScreenCoordinator: the serving side of the distributed
/// virtual-screening service. It shards the ligand library into bounded
/// index ranges, leases shards to pulling workers over the framed wire
/// protocol, extends each lease chunk-by-chunk through granted windows
/// (the heartbeat), journals every completed shard for checkpoint
/// resume, re-queues shards whose heartbeats lapse (worker death), and
/// steals work from stragglers by splitting the un-granted tail of their
/// shards into fresh shards for idle workers.
///
/// Shard lifecycle:
///
///       +---------+   LEASE    +--------+  RESULT accepted  +------+
///   --> | pending | ---------> | leased | ----------------> | done |
///       +---------+            +--------+   (journaled)     +------+
///            ^                    |   |
///            |   lease timeout    |   |  split: end trimmed to the
///            +--------------------+   |  granted frontier + half the
///            |                        v  remainder; the tail becomes
///            |                 +-------------+  a new pending shard
///            +---------------- | stolen tail |
///                              +-------------+
///
/// Invariant: live shards partition the uncovered library ranges at all
/// times — splits conserve the partition, expiries re-queue the exact
/// leased range — and a worker can only screen granted indices, so no
/// ligand is ever double-counted in the journal or the merged report.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stopwatch.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/screen/journal.hpp"
#include "src/screen/protocol.hpp"
#include "src/screen/topk.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::screen {

struct CoordinatorOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral; read back via port()
  std::string journalPath;       ///< empty = no checkpointing
  bool resume = false;           ///< seed state from an existing journal
  /// Test/fault-injection hook: simulate a coordinator crash by halting
  /// (listener closed, connections dropped, no joins) after this many
  /// shard results have been journaled. 0 = never.
  std::size_t haltAfterShards = 0;
};

struct CoordinatorStats {
  std::size_t shardsTotal = 0;     ///< ever created (initial + splits), incl. resumed
  std::size_t shardsDone = 0;      ///< results accepted this run
  std::size_t shardsResumed = 0;   ///< records loaded from the journal
  std::size_t shardsStolen = 0;    ///< splits of straggler shards
  std::size_t leasesExpired = 0;   ///< heartbeat lapses -> re-queued
  std::size_t resultsStale = 0;    ///< RESULTs rejected for dead leases
  std::size_t ligandsDone = 0;     ///< covered library indices (incl. resumed)
  std::size_t workersSeen = 0;     ///< distinct worker ids that said HELLO
  std::uint64_t requests = 0;
};

class ScreenCoordinator {
 public:
  /// Opens (and counts) the library named by `config`, builds or resumes
  /// the shard set, and starts accepting workers on 127.0.0.1. Throws
  /// std::runtime_error on unreadable library/journal or a journal whose
  /// config fingerprint does not match.
  ScreenCoordinator(ScreenJobConfig config, CoordinatorOptions options = {});
  ~ScreenCoordinator();

  ScreenCoordinator(const ScreenCoordinator&) = delete;
  ScreenCoordinator& operator=(const ScreenCoordinator&) = delete;

  std::uint16_t port() const { return port_; }
  const ScreenJobConfig& config() const { return config_; }

  bool done() const;
  bool halted() const;

  /// Block until every shard is done (returns true) or the coordinator
  /// halts (simulated crash; returns false). timeoutSeconds 0 = forever.
  bool waitUntilDone(double timeoutSeconds = 0.0);

  /// The merged report. Valid once done(); the ranking holds the global
  /// top-K under the stable total order, and the aggregate counters sum
  /// over every journaled shard.
  metadock::ScreeningReport report() const;

  CoordinatorStats stats() const;

  /// Stop serving without joining handler threads: close the listener,
  /// shut down live connections. This is what the haltAfterShards hook
  /// calls — to a worker it is indistinguishable from a crash.
  void halt();

  /// Graceful full stop: halt, then join every thread. Idempotent; also
  /// run by the destructor.
  void stop();

 private:
  enum class ShardStatus { kPending, kLeased, kDone };

  struct Shard {
    std::uint64_t id = 0;
    std::size_t begin = 0;
    std::size_t end = 0;        ///< exclusive; may shrink when the tail is stolen
    std::size_t grantEnd = 0;   ///< frontier of granted (screenable) indices
    ShardStatus status = ShardStatus::kPending;
    std::uint64_t lease = 0;    ///< current lease token (0 = none)
    std::string worker;
    std::chrono::steady_clock::time_point lastBeat;
  };

  void acceptLoop();
  void handleConnection(int fd);
  serve::Message handleRequest(const serve::Message& request);
  serve::Message handleLease(const serve::Message& request);
  serve::Message handleProgress(const serve::Message& request);
  serve::Message handleResult(const serve::Message& request);
  serve::Message handleStatus() const;

  // All five below require mu_ held.
  void reclaimExpiredLeases();
  Shard* findShard(std::uint64_t id);
  Shard* splitStraggler();
  void recordResult(Shard& shard, ShardRecord record);
  serve::Message leaseShard(Shard& shard, const std::string& worker);

  ScreenJobConfig config_;
  CoordinatorOptions options_;
  Stopwatch clock_;

  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptThread_;

  mutable std::mutex mu_;
  std::condition_variable doneCv_;
  std::vector<Shard> shards_;
  std::uint64_t nextShardId_ = 1;
  std::uint64_t nextLease_ = 1;
  TopKMerger merger_;
  std::size_t hitCount_ = 0;
  std::size_t totalEvaluations_ = 0;
  CoordinatorStats stats_;
  std::vector<std::string> knownWorkers_;
  std::unique_ptr<ScreenJournal> journal_;
  bool done_ = false;
  bool halted_ = false;
  bool stopped_ = false;
  std::vector<std::thread> handlers_;
  std::vector<int> connectionFds_;
};

}  // namespace dqndock::screen
