#include "src/screen/topk.hpp"

namespace dqndock::screen {

void TopKMerger::add(const metadock::ScreeningHit& hit) {
  if (!seen_.insert(hit.ligandIndex).second) return;  // duplicate delivery
  best_.insert(hit);
  if (k_ > 0 && best_.size() > k_) {
    best_.erase(std::prev(best_.end()));  // drop the current worst
  }
}

void TopKMerger::add(const std::vector<metadock::ScreeningHit>& hits) {
  for (const auto& hit : hits) add(hit);
}

std::vector<metadock::ScreeningHit> TopKMerger::sorted() const {
  return std::vector<metadock::ScreeningHit>(best_.begin(), best_.end());
}

}  // namespace dqndock::screen
