#include "src/screen/hit_codec.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace dqndock::screen {

namespace {

void appendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

std::string escapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '%' || c == ',' || c == ' ' || c == '\n' || c == '=' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescapeName(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%') {
      if (i + 2 >= escaped.size()) throw std::invalid_argument("decodeHit: truncated escape");
      const std::string hex(escaped.substr(i + 1, 2));
      out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

std::vector<std::string_view> splitFields(std::string_view token) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= token.size()) {
    const auto comma = token.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(token.substr(start));
      break;
    }
    fields.push_back(token.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

double parseDouble(std::string_view field, const char* what) {
  const std::string s(field);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) {
    throw std::invalid_argument(std::string("decodeHit: bad ") + what + " '" + s + "'");
  }
  return v;
}

std::size_t parseSize(std::string_view field, const char* what) {
  const std::string s(field);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || s.empty()) {
    throw std::invalid_argument(std::string("decodeHit: bad ") + what + " '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string encodeHit(const metadock::ScreeningHit& hit) {
  std::string out;
  out += std::to_string(hit.ligandIndex);
  out += ',';
  out += escapeName(hit.ligandName);
  out += ',';
  out += std::to_string(hit.atoms);
  out += ',';
  appendDouble(out, hit.bestScore);
  out += ',';
  appendDouble(out, hit.refinedScore);
  out += ',';
  out += std::to_string(hit.bindingModes);
  out += ',';
  out += std::to_string(hit.evaluations);
  out += ',';
  appendDouble(out, hit.bestPose.translation.x);
  out += ',';
  appendDouble(out, hit.bestPose.translation.y);
  out += ',';
  appendDouble(out, hit.bestPose.translation.z);
  out += ',';
  appendDouble(out, hit.bestPose.orientation.w);
  out += ',';
  appendDouble(out, hit.bestPose.orientation.x);
  out += ',';
  appendDouble(out, hit.bestPose.orientation.y);
  out += ',';
  appendDouble(out, hit.bestPose.orientation.z);
  out += ',';
  out += std::to_string(hit.bestPose.torsions.size());
  for (const double t : hit.bestPose.torsions) {
    out += ',';
    appendDouble(out, t);
  }
  return out;
}

metadock::ScreeningHit decodeHit(std::string_view token) {
  const auto fields = splitFields(token);
  constexpr std::size_t kFixedFields = 15;
  if (fields.size() < kFixedFields) {
    throw std::invalid_argument("decodeHit: expected >= 15 fields, got " +
                                std::to_string(fields.size()));
  }
  metadock::ScreeningHit hit;
  hit.ligandIndex = parseSize(fields[0], "index");
  hit.ligandName = unescapeName(fields[1]);
  hit.atoms = parseSize(fields[2], "atoms");
  hit.bestScore = parseDouble(fields[3], "best_score");
  hit.refinedScore = parseDouble(fields[4], "refined_score");
  hit.bindingModes = parseSize(fields[5], "binding_modes");
  hit.evaluations = parseSize(fields[6], "evaluations");
  hit.bestPose.translation = {parseDouble(fields[7], "tx"), parseDouble(fields[8], "ty"),
                              parseDouble(fields[9], "tz")};
  hit.bestPose.orientation = {parseDouble(fields[10], "qw"), parseDouble(fields[11], "qx"),
                              parseDouble(fields[12], "qy"), parseDouble(fields[13], "qz")};
  const std::size_t torsions = parseSize(fields[14], "torsion_count");
  if (fields.size() != kFixedFields + torsions) {
    throw std::invalid_argument("decodeHit: torsion count mismatch");
  }
  hit.bestPose.torsions.reserve(torsions);
  for (std::size_t i = 0; i < torsions; ++i) {
    hit.bestPose.torsions.push_back(parseDouble(fields[kFixedFields + i], "torsion"));
  }
  return hit;
}

}  // namespace dqndock::screen
