#pragma once

/// \file hit_codec.hpp
/// Lossless single-token serialization of a ScreeningHit, shared by the
/// RESULT wire frames and the coordinator's on-disk journal so a hit
/// survives any number of worker -> coordinator -> journal -> resume
/// round trips bit-for-bit (doubles travel as %.17g, which strtod
/// reverses exactly).
///
/// Token layout (comma-separated, no spaces or newlines):
///
///   index,name,atoms,best,refined,modes,evals,tx,ty,tz,qw,qx,qy,qz,nt,t0..t{nt-1}
///
/// Ligand names are percent-escaped so arbitrary names cannot break the
/// token or the line-oriented journal around it.

#include <string>
#include <string_view>

#include "src/metadock/vs_pipeline.hpp"

namespace dqndock::screen {

std::string encodeHit(const metadock::ScreeningHit& hit);

/// Throws std::invalid_argument on malformed tokens (wrong field count,
/// unparsable numbers, truncated torsion list).
metadock::ScreeningHit decodeHit(std::string_view token);

}  // namespace dqndock::screen
