#include "src/screen/worker.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "src/chem/library_io.hpp"
#include "src/common/logging.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/screen/hit_codec.hpp"
#include "src/screen/protocol.hpp"
#include "src/screen/topk.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::screen {

using serve::Message;

ScreenWorker::ScreenWorker(std::uint16_t port, WorkerOptions options, std::string host)
    : port_(port), host_(std::move(host)), options_(std::move(options)) {}

WorkerStats ScreenWorker::run() {
  WorkerStats stats;
  try {
    serve::TcpClient client(port_, host_, options_.retry);

    Message hello{kMsgHello, {}};
    hello.set("worker", options_.id);
    const Message configReply = client.request(hello, options_.retry);
    if (configReply.type != kMsgConfig) {
      stats.error = "HELLO rejected: " + configReply.type + " " +
                    configReply.get("reason", "");
      return stats;
    }
    const ScreenJobConfig config = configFromMessage(configReply);
    const chem::Molecule receptor = loadReceptor(config);
    chem::LigandLibraryReader reader(config.libraryPath);
    const metadock::ScreeningOptions screeningOptions = config.screeningOptions();

    while (options_.maxShards == 0 || stats.shardsCompleted < options_.maxShards) {
      Message lease{kMsgLease, {}};
      lease.set("worker", options_.id);
      // LEASE is safe to retry across reconnects: a lease granted to a
      // lost reply is simply never heartbeated and expires back into the
      // queue.
      const Message leaseReply = client.request(lease, options_.retry);
      if (leaseReply.type == kMsgFinished) {
        stats.finished = true;
        return stats;
      }
      if (leaseReply.type == kMsgWait) {
        const long retryMs = leaseReply.getInt("retry_ms", 100);
        std::this_thread::sleep_for(std::chrono::milliseconds(retryMs));
        continue;
      }
      if (leaseReply.type != kMsgShard) {
        stats.error = "LEASE rejected: " + leaseReply.type + " " +
                      leaseReply.get("reason", "");
        return stats;
      }

      const auto shardId = static_cast<std::uint64_t>(leaseReply.getInt("shard", 0));
      const auto leaseToken = static_cast<std::uint64_t>(leaseReply.getInt("lease", 0));
      const auto begin = static_cast<std::size_t>(leaseReply.getInt("begin", 0));
      std::size_t cursor = begin;
      auto grantEnd = static_cast<std::size_t>(leaseReply.getInt("grant_end", 0));

      TopKMerger local(config.topK);
      std::size_t localHits = 0;
      std::size_t localEvaluations = 0;
      bool lostLease = false;

      for (;;) {
        if (grantEnd > cursor) {
          const std::vector<chem::Molecule> window = reader.read(cursor, grantEnd);
          const metadock::ScreeningReport part = metadock::screenLibrarySlice(
              receptor, window, cursor, screeningOptions, options_.pool);
          local.add(part.ranked);
          localHits += part.hitCount;
          localEvaluations += part.totalEvaluations;
          stats.ligandsScreened += grantEnd - cursor;
          cursor = grantEnd;
          ++stats.chunksScreened;
          if (options_.abortAfterChunks > 0 &&
              stats.chunksScreened >= options_.abortAfterChunks) {
            // Simulated crash: vanish without a RESULT or goodbye. The
            // coordinator's lease timeout reclaims the shard.
            stats.aborted = true;
            return stats;
          }
        }
        // Report the completed frontier and claim the next chunk — this
        // is the heartbeat. Idempotent, so safe under request retries.
        Message progress{kMsgProgress, {}};
        progress.set("shard", shardId)
            .set("lease", leaseToken)
            .set("done", static_cast<std::uint64_t>(cursor))
            .set("claim", static_cast<std::uint64_t>(cursor + config.chunkSize));
        const Message grantReply = client.request(progress, options_.retry);
        if (grantReply.type == kMsgAbandon) {
          // Lease lost (expired and re-queued, or we out-waited a split).
          // Discard local work; the range is someone else's now.
          ++stats.abandoned;
          lostLease = true;
          break;
        }
        if (grantReply.type != kMsgGrant) {
          stats.error = "PROGRESS rejected: " + grantReply.type + " " +
                        grantReply.get("reason", "");
          return stats;
        }
        const auto granted = static_cast<std::size_t>(grantReply.getInt("grant_end", 0));
        if (granted <= cursor) break;  // no more indices: shard complete at cursor
        grantEnd = granted;
      }
      if (lostLease) continue;

      Message result{kMsgResult, {}};
      result.set("shard", shardId)
          .set("lease", leaseToken)
          .set("begin", static_cast<std::uint64_t>(begin))
          .set("end", static_cast<std::uint64_t>(cursor))
          .set("hit_count", static_cast<std::uint64_t>(localHits))
          .set("evals", static_cast<std::uint64_t>(localEvaluations));
      const std::vector<metadock::ScreeningHit> hits = local.sorted();
      result.set("n", static_cast<std::uint64_t>(hits.size()));
      for (std::size_t i = 0; i < hits.size(); ++i) {
        result.set("h" + std::to_string(i), encodeHit(hits[i]));
      }
      const Message resultReply = client.request(result, options_.retry);
      if (resultReply.type == kMsgStale) {
        ++stats.staleResults;
        continue;
      }
      if (resultReply.type != "OK") {
        stats.error = "RESULT rejected: " + resultReply.type + " " +
                      resultReply.get("reason", "");
        return stats;
      }
      ++stats.shardsCompleted;
      logDebug() << "ScreenWorker '" << options_.id << "': shard " << shardId << " ["
                 << begin << "," << cursor << ") accepted";
    }
  } catch (const std::exception& e) {
    stats.error = e.what();
  }
  return stats;
}

}  // namespace dqndock::screen
