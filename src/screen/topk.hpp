#pragma once

/// \file topk.hpp
/// Deterministic fault-tolerant top-K accumulator for screening hits.
///
/// Merging is associative, commutative and idempotent under the stable
/// total order metadock::hitOrderBefore (score, then ligand index):
/// feeding the same per-ligand hits in any grouping — one shard or a
/// thousand, any arrival order, including duplicate deliveries from
/// re-screened shards — yields a bit-identical top-K. That is what lets
/// the coordinator accept results from retries, resumed journals and
/// re-leased shards without a reconciliation pass.

#include <cstddef>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/metadock/vs_pipeline.hpp"

namespace dqndock::screen {

class TopKMerger {
 public:
  /// Keep the best `k` hits; k == 0 keeps everything.
  explicit TopKMerger(std::size_t k) : k_(k) {}

  /// Insert one hit. A ligand index already seen is ignored (duplicate
  /// deliveries are bit-identical re-screens by construction, so first
  /// wins == last wins).
  void add(const metadock::ScreeningHit& hit);
  void add(const std::vector<metadock::ScreeningHit>& hits);

  /// Hits currently retained, best first (stable total order).
  std::vector<metadock::ScreeningHit> sorted() const;

  std::size_t size() const { return best_.size(); }
  std::size_t k() const { return k_; }

 private:
  struct OrderCmp {
    bool operator()(const metadock::ScreeningHit& a, const metadock::ScreeningHit& b) const {
      return metadock::hitOrderBefore(a, b);
    }
  };

  std::size_t k_;
  std::set<metadock::ScreeningHit, OrderCmp> best_;
  /// Every ligand index ever offered — including ones pruned below the
  /// K-th rank — so duplicates can never re-enter.
  std::unordered_set<std::size_t> seen_;
};

}  // namespace dqndock::screen
