#include "src/screen/protocol.hpp"

#include <cstdio>
#include <stdexcept>

#include "src/chem/mol2_io.hpp"
#include "src/chem/pdb_io.hpp"
#include "src/chem/synthetic.hpp"

namespace dqndock::screen {

namespace {

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

metadock::ScreeningOptions ScreenJobConfig::screeningOptions() const {
  metadock::ScreeningOptions opts;
  opts.search = searchPresetByName(searchPreset);
  opts.evaluationsPerLigand = evaluationsPerLigand;
  opts.refineWithGradient = refineWithGradient;
  opts.clusterModes = clusterModes;
  opts.clusterRmsd = clusterRmsd;
  opts.scoringCutoff = scoringCutoff;
  opts.seed = seed;
  opts.hitThreshold = hitThreshold;
  return opts;
}

metadock::MetaheuristicParams searchPresetByName(const std::string& name) {
  if (name == "random-search") return metadock::MetaheuristicParams::randomSearch();
  if (name == "local-search") return metadock::MetaheuristicParams::localSearch();
  if (name == "monte-carlo") return metadock::MetaheuristicParams::monteCarlo();
  if (name == "genetic") return metadock::MetaheuristicParams::genetic();
  throw std::runtime_error("unknown search preset '" + name + "'");
}

serve::Message configToMessage(const ScreenJobConfig& config) {
  serve::Message msg{kMsgConfig, {}};
  msg.set("library", config.libraryPath)
      .set("library_size", static_cast<std::uint64_t>(config.librarySize))
      .set("scenario", config.scenario)
      .set("scenario_seed", config.scenarioSeed)
      .set("search", config.searchPreset)
      .set("evals", static_cast<std::uint64_t>(config.evaluationsPerLigand))
      .set("refine", static_cast<long>(config.refineWithGradient ? 1 : 0))
      .set("cluster", static_cast<long>(config.clusterModes ? 1 : 0))
      .set("cluster_rmsd", config.clusterRmsd)
      .set("cutoff", config.scoringCutoff)
      .set("hit_threshold", config.hitThreshold)
      .set("seed", config.seed)
      .set("topk", static_cast<std::uint64_t>(config.topK))
      .set("shard_size", static_cast<std::uint64_t>(config.shardSize))
      .set("chunk", static_cast<std::uint64_t>(config.chunkSize))
      .set("lease_timeout_s", config.leaseTimeoutSeconds);
  if (!config.receptorFile.empty()) msg.set("receptor_file", config.receptorFile);
  return msg;
}

ScreenJobConfig configFromMessage(const serve::Message& msg) {
  if (msg.type != kMsgConfig) {
    throw serve::ProtocolError("configFromMessage: expected CONFIG, got " + msg.type);
  }
  ScreenJobConfig config;
  config.libraryPath = msg.get("library");
  config.librarySize = static_cast<std::size_t>(msg.getInt("library_size", 0));
  config.scenario = msg.get("scenario", config.scenario);
  config.scenarioSeed = static_cast<std::uint64_t>(msg.getInt("scenario_seed", 2018));
  config.receptorFile = msg.get("receptor_file");
  config.searchPreset = msg.get("search", config.searchPreset);
  config.evaluationsPerLigand = static_cast<std::size_t>(msg.getInt("evals", 400));
  config.refineWithGradient = msg.getInt("refine", 0) != 0;
  config.clusterModes = msg.getInt("cluster", 0) != 0;
  config.clusterRmsd = msg.getDouble("cluster_rmsd", config.clusterRmsd);
  config.scoringCutoff = msg.getDouble("cutoff", config.scoringCutoff);
  config.hitThreshold = msg.getDouble("hit_threshold", config.hitThreshold);
  config.seed = static_cast<std::uint64_t>(msg.getInt("seed", 2020));
  config.topK = static_cast<std::size_t>(msg.getInt("topk", 32));
  config.shardSize = static_cast<std::size_t>(msg.getInt("shard_size", 64));
  config.chunkSize = static_cast<std::size_t>(msg.getInt("chunk", 8));
  config.leaseTimeoutSeconds = msg.getDouble("lease_timeout_s", 10.0);
  if (config.libraryPath.empty()) throw serve::ProtocolError("CONFIG missing library=");
  if (config.librarySize == 0) throw serve::ProtocolError("CONFIG missing library_size=");
  if (config.chunkSize == 0 || config.shardSize == 0) {
    throw serve::ProtocolError("CONFIG shard_size/chunk must be positive");
  }
  return config;
}

std::string configFingerprint(const ScreenJobConfig& config) {
  // Only fields that change per-ligand results or the report shape
  // participate; scheduling knobs (shard/chunk size, lease timeout, the
  // library *path*) may differ between a run and its resume.
  std::string fp = "v1";
  fp += ";n=" + std::to_string(config.librarySize);
  fp += ";rec=" + (config.receptorFile.empty()
                       ? config.scenario + ":" + std::to_string(config.scenarioSeed)
                       : config.receptorFile);
  fp += ";search=" + config.searchPreset;
  fp += ";evals=" + std::to_string(config.evaluationsPerLigand);
  fp += ";refine=" + std::to_string(config.refineWithGradient ? 1 : 0);
  fp += ";cluster=" + std::to_string(config.clusterModes ? 1 : 0);
  fp += ";crmsd=" + formatDouble(config.clusterRmsd);
  fp += ";cutoff=" + formatDouble(config.scoringCutoff);
  fp += ";hit=" + formatDouble(config.hitThreshold);
  fp += ";seed=" + std::to_string(config.seed);
  fp += ";topk=" + std::to_string(config.topK);
  for (char& c : fp) {
    if (c == ' ' || c == '\n') c = '_';
  }
  return fp;
}

chem::Molecule loadReceptor(const ScreenJobConfig& config) {
  if (!config.receptorFile.empty()) {
    const auto dot = config.receptorFile.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : config.receptorFile.substr(dot + 1);
    if (ext == "mol2") return chem::readMol2File(config.receptorFile);
    if (ext == "pdb") return chem::readPdbFile(config.receptorFile);
    throw std::runtime_error("loadReceptor: unsupported receptor format " +
                             config.receptorFile);
  }
  chem::ScenarioSpec spec;
  if (config.scenario == "tiny") {
    spec = chem::ScenarioSpec::tiny();
  } else if (config.scenario == "paper2bsm") {
    spec = chem::ScenarioSpec::paper2bsm();
  } else {
    throw std::runtime_error("loadReceptor: unknown scenario '" + config.scenario + "'");
  }
  spec.seed = config.scenarioSeed;
  return chem::buildScenario(spec).receptor;
}

}  // namespace dqndock::screen
