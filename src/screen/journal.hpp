#pragma once

/// \file journal.hpp
/// Append-only checkpoint journal of the screening coordinator. One
/// record per completed shard, written (and flushed) the moment the
/// shard's RESULT is accepted, so a killed coordinator loses at most the
/// shards still in flight — never finished work. A restart with
/// --resume loads the journal, re-seeds the top-K merger and the
/// aggregate counters, and queues only the uncovered index ranges.
///
/// Format (line-oriented text, hexdump-debuggable like the wire):
///
///   DQNDOCK-SCREEN-JOURNAL v1
///   FINGERPRINT <config fingerprint>
///   SHARD <begin> <end> <hit_count> <evaluations> <n> <hit0> ... <hit{n-1}> END
///   ...
///
/// Every record is a single line ending in the literal sentinel "END";
/// a torn tail (the coordinator died mid-write) fails that check and is
/// skipped, as is anything after it. The fingerprint pins every
/// result-affecting config field: resuming under a different config
/// refuses the journal instead of silently mixing two runs.

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "src/metadock/vs_pipeline.hpp"

namespace dqndock::screen {

/// One completed shard: the library range it covered, its aggregate
/// counters, and its local top-K hits.
struct ShardRecord {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t hitCount = 0;
  std::size_t evaluations = 0;
  std::vector<metadock::ScreeningHit> hits;
};

class ScreenJournal {
 public:
  struct LoadResult {
    bool exists = false;             ///< file was present and had a valid header
    std::string fingerprint;
    std::vector<ShardRecord> records;
    std::size_t skippedLines = 0;    ///< torn/garbled lines ignored
  };

  /// Parse a journal. A missing/unreadable file or bad header returns
  /// exists=false rather than throwing — "nothing to resume" is a normal
  /// first run.
  static LoadResult load(const std::string& path);

  /// Open `path` for appending. When `truncate` is true (fresh run) the
  /// file is recreated with a new header; otherwise records append after
  /// the existing content (resume). Throws std::runtime_error on I/O
  /// failure.
  ScreenJournal(const std::string& path, const std::string& fingerprint, bool truncate);

  /// Append one shard record and flush it to the OS, so the record
  /// survives any subsequent crash of this process.
  void append(const ShardRecord& record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace dqndock::screen
