#pragma once

/// \file gateway.hpp
/// HTTP/JSON front-end for the docking service: browsers and standard
/// tooling (curl, python-requests) submit dock/screen jobs as JSON over
/// HTTP/1.1 instead of the custom length-prefixed framing — which stays
/// in place as the INTERNAL transport (TcpServer/TcpClient, the screen
/// coordinator wire). One gateway hosts many registered networks via a
/// TenantDirectory: requests route by model name onto that tenant's
/// DockingService worker pool, each backed by its own hot-swappable
/// ModelRegistry.
///
/// Routes (JSON in, JSON out; no other formats):
///   GET  /v1/healthz                 liveness -> {"status":"ok",...}
///   GET  /v1/models                  discovery: every registered model
///   GET  /v1/stats                   per-pool queue depth + latency
///                                    percentiles (autoscaling signals)
///   POST /v1/models/<name>/dock      body: {"max_steps","epsilon","seed",
///                                    "priority","timeout_s"} (all optional)
///   POST /v1/models/<name>/screen    body: {"library_size","min_atoms",
///                                    "max_atoms","evals","seed",...}
///
/// Error contract: unknown model -> 404, wrong method -> 405, malformed
/// JSON/HTTP -> 400-class with a JSON {"error": ...} body, queue
/// backpressure -> 503 with the rejection code. A malformed or hostile
/// byte stream can produce a 4xx and a closed connection — never a
/// crash, hang, or SIGPIPE exit.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/gateway/http.hpp"
#include "src/gateway/json.hpp"
#include "src/serve/tenant.hpp"

namespace dqndock::gateway {

struct GatewayStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;       ///< HTTP requests answered (any status)
  std::uint64_t parseErrors = 0;    ///< malformed HTTP rejected with a 4xx/5xx
  std::uint64_t peerHangups = 0;    ///< clients gone before reading the reply
};

class HttpGateway {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the chosen one via
  /// port()) and starts accepting. The directory must outlive the
  /// gateway and have every tenant registered up front. Throws
  /// std::runtime_error on bind failure.
  HttpGateway(const serve::TenantDirectory& directory, std::uint16_t port = 0);
  ~HttpGateway();

  HttpGateway(const HttpGateway&) = delete;
  HttpGateway& operator=(const HttpGateway&) = delete;

  std::uint16_t port() const { return port_; }

  /// Block until stop()/requestStop() was called.
  void waitUntilStopped();
  bool stopRequested() const;

  /// Graceful stop: close the listener, unblock connection reads, join
  /// every handler thread. Idempotent; also run by the destructor.
  void stop();

  /// Non-joining half of stop(): refuse new connections and wake
  /// waitUntilStopped(). Safe from any thread.
  void requestStop();

  GatewayStats stats() const;

 private:
  struct Reply {
    int status = 200;
    JsonValue body;
    Reply(int s, JsonValue b) : status(s), body(std::move(b)) {}
  };

  void acceptLoop();
  void handleConnection(int fd);
  /// Route + execute one parsed request. Exceptions never escape: every
  /// outcome is a status + JSON body.
  Reply dispatch(const HttpRequest& request);
  Reply handleHealthz() const;
  Reply handleModels() const;
  Reply handleStats() const;
  Reply handleDock(serve::TenantDirectory::Tenant& tenant, const JsonValue& body);
  Reply handleScreen(serve::TenantDirectory::Tenant& tenant, const JsonValue& body);
  /// Loops ::send with MSG_NOSIGNAL; false when the peer hung up or the
  /// transport failed (the connection is then abandoned).
  bool sendAll(int fd, std::string_view bytes);

  const serve::TenantDirectory& directory_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable stopCv_;
  bool stopRequested_ = false;
  bool stopped_ = false;
  std::vector<std::thread> handlers_;
  std::vector<int> connectionFds_;
  GatewayStats stats_;

  std::thread acceptThread_;
};

}  // namespace dqndock::gateway
