#pragma once

/// \file json.hpp
/// Dependency-free JSON value + encoder + strict recursive-descent
/// parser for the HTTP gateway (in the spirit of the KIV-UPP sem02
/// hand-rolled serialization exemplar). Scope is exactly what the
/// gateway needs:
///
///   - objects keep insertion order, so encoded replies are stable and
///     diffable across runs;
///   - doubles encode with %.17g, so a score travels the HTTP surface
///     bit-identically (the acceptance criterion for routed docks);
///   - the parser is strict (whole-input, depth-capped, UTF-16 escape
///     aware) and throws JsonError on anything malformed — the gateway
///     maps that to 400, never to a crash.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dqndock::gateway {

/// Malformed JSON text (parse) or a type-mismatched access (asNumber on
/// a string, ...). The gateway turns it into 400 Bad Request.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Nesting depth cap for the parser: hostile "[[[[..." input must
/// exhaust the limit, not the stack.
inline constexpr std::size_t kMaxJsonDepth = 32;

class JsonValue {
 public:
  enum class Type : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Typed accessors throw JsonError on mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  /// Array ops (throw JsonError unless isArray()).
  JsonValue& push(JsonValue v);
  const std::vector<JsonValue>& items() const;

  /// Object ops (throw JsonError unless isObject()). set() keeps
  /// insertion order and overwrites an existing key in place.
  JsonValue& set(std::string key, JsonValue v);
  JsonValue& set(std::string key, const char* v) { return set(std::move(key), string(v)); }
  JsonValue& set(std::string key, std::string v) { return set(std::move(key), string(std::move(v))); }
  JsonValue& set(std::string key, double v) { return set(std::move(key), number(v)); }
  JsonValue& set(std::string key, bool v) { return set(std::move(key), boolean(v)); }
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// nullptr when the key is absent.
  const JsonValue* find(const std::string& key) const;

  /// Request-decoding helpers: absent key -> fallback; present but
  /// wrong-typed -> JsonError (a client typo must be a 400, not a
  /// silently-applied default).
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key, const std::string& fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Compact encoding (no insignificant whitespace). Non-finite numbers
/// throw JsonError — JSON cannot represent them and silently emitting
/// null would corrupt a score.
std::string jsonEncode(const JsonValue& value);

/// Strict parse of the WHOLE input (trailing non-whitespace is an
/// error). Throws JsonError on malformed text, depth beyond
/// kMaxJsonDepth, or invalid string escapes.
JsonValue jsonParse(std::string_view text);

}  // namespace dqndock::gateway
