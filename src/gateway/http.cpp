#include "src/gateway/http.hpp"

#include <algorithm>
#include <cctype>

namespace dqndock::gateway {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string_view trimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// RFC 7230 token characters (method and header-name alphabet).
bool isTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

bool isToken(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!isTokenChar(c)) return false;
  }
  return true;
}

}  // namespace

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

bool HttpRequest::wantsClose() const {
  const std::string connection = toLower(header("connection"));
  if (connection.find("close") != std::string::npos) return true;
  if (version == "HTTP/1.0" && connection.find("keep-alive") == std::string::npos) return true;
  return false;
}

HttpParser::Status HttpParser::failWith(int status, std::string reason) {
  phase_ = Phase::kFailed;
  status_ = Status::kError;
  errorStatus_ = status;
  errorReason_ = std::move(reason);
  return status_;
}

/// Pull one CRLF-terminated line off the buffer (bare LF tolerated, as
/// curl/netcat users expect). Returns false when no full line is
/// buffered yet — after flagging an error if the unterminated prefix
/// already exceeds `cap` (a peer streaming an endless first line must
/// hit the limit without a newline ever arriving).
bool HttpParser::takeLine(std::string& line, std::size_t cap, int overflowStatus,
                          const char* what) {
  const std::size_t eol = buffer_.find('\n');
  if (eol == std::string::npos) {
    if (buffer_.size() > cap) failWith(overflowStatus, std::string(what) + " too large");
    return false;
  }
  if (eol > cap) {
    failWith(overflowStatus, std::string(what) + " too large");
    return false;
  }
  line = buffer_.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buffer_.erase(0, eol + 1);
  return true;
}

HttpParser::Status HttpParser::feed(std::string_view data) {
  if (phase_ == Phase::kFailed || phase_ == Phase::kDone) return status_;
  buffer_.append(data.data(), data.size());
  return advance();
}

void HttpParser::reset() {
  phase_ = Phase::kRequestLine;
  status_ = Status::kNeedMore;
  request_ = HttpRequest{};
  headerBytes_ = 0;
  contentLength_ = 0;
  errorStatus_ = 0;
  errorReason_.clear();
  if (!buffer_.empty()) advance();  // a pipelined request may already be complete
}

HttpParser::Status HttpParser::advance() {
  std::string line;
  while (phase_ == Phase::kRequestLine || phase_ == Phase::kHeaders) {
    if (phase_ == Phase::kRequestLine) {
      if (!takeLine(line, kMaxRequestLineBytes, 431, "request line")) return status_;
      if (line.empty()) continue;  // tolerate leading blank lines (RFC 7230 §3.5)
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                       : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        return failWith(400, "malformed request line");
      }
      request_.method = line.substr(0, sp1);
      request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      request_.version = line.substr(sp2 + 1);
      if (!isToken(request_.method)) return failWith(400, "bad method token");
      if (request_.target.empty() || request_.target.find(' ') != std::string::npos) {
        return failWith(400, "bad request target");
      }
      if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
        return failWith(505, "unsupported HTTP version");
      }
      phase_ = Phase::kHeaders;
      continue;
    }

    // Headers.
    if (!takeLine(line, kMaxHeaderBytes, 431, "header section")) return status_;
    headerBytes_ += line.size() + 2;
    if (headerBytes_ > kMaxHeaderBytes) return failWith(431, "header section too large");
    if (line.empty()) {
      // End of headers: fix the body framing.
      if (request_.headers.count("transfer-encoding") != 0) {
        return failWith(501, "Transfer-Encoding not supported; send Content-Length");
      }
      const auto it = request_.headers.find("content-length");
      if (it == request_.headers.end()) {
        contentLength_ = 0;
      } else {
        // Strict digits-only parse: negatives, signs, whitespace and
        // anything non-numeric are a framing attack, not a number.
        const std::string& text = it->second;
        if (text.empty() || text.size() > 10 ||
            !std::all_of(text.begin(), text.end(),
                         [](unsigned char c) { return std::isdigit(c); })) {
          return failWith(400, "bad Content-Length");
        }
        unsigned long long n = 0;
        for (const char c : text) n = n * 10 + static_cast<unsigned long long>(c - '0');
        if (n > kMaxBodyBytes) return failWith(413, "request body too large");
        contentLength_ = static_cast<std::size_t>(n);
      }
      phase_ = Phase::kBody;
      break;
    }
    if (request_.headers.size() >= kMaxHeaderCount) {
      return failWith(431, "too many headers");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return failWith(400, "malformed header line");
    const std::string name = toLower(line.substr(0, colon));
    if (!isToken(name)) return failWith(400, "bad header name");
    const std::string_view value = trimOws(std::string_view(line).substr(colon + 1));
    // Duplicate Content-Length headers are a request-smuggling vector:
    // two conflicting lengths must be rejected, not last-wins merged.
    auto [pos, inserted] = request_.headers.emplace(name, std::string(value));
    if (!inserted) {
      if (name == "content-length" && pos->second != value) {
        return failWith(400, "conflicting Content-Length headers");
      }
      pos->second = std::string(value);  // benign duplicate: last wins
    }
  }

  if (phase_ == Phase::kBody) {
    if (buffer_.size() < contentLength_) return status_;  // kNeedMore
    request_.body = buffer_.substr(0, contentLength_);
    buffer_.erase(0, contentLength_);  // surplus = pipelined next request
    phase_ = Phase::kDone;
    status_ = Status::kComplete;
  }
  return status_;
}

std::string_view httpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string buildHttpResponse(int status, std::string_view contentType, std::string_view body,
                              bool close) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += httpStatusText(status);
  out += "\r\nContent-Type: ";
  out += contentType;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  if (close) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

}  // namespace dqndock::gateway
