#include "src/gateway/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dqndock::gateway {

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.type_ = Type::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.type_ = Type::kObject;
  return out;
}

namespace {

[[noreturn]] void typeMismatch(const char* wanted) {
  throw JsonError(std::string("JsonValue: not a ") + wanted);
}

}  // namespace

bool JsonValue::asBool() const {
  if (type_ != Type::kBool) typeMismatch("bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (type_ != Type::kNumber) typeMismatch("number");
  return number_;
}

const std::string& JsonValue::asString() const {
  if (type_ != Type::kString) typeMismatch("string");
  return string_;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (type_ != Type::kArray) typeMismatch("array");
  items_.push_back(std::move(v));
  return *this;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) typeMismatch("array");
  return items_;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  if (type_ != Type::kObject) typeMismatch("object");
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) typeMismatch("object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) typeMismatch("object");
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->isNull()) return fallback;
  if (!v->isNumber()) throw JsonError("field \"" + key + "\" must be a number");
  return v->asNumber();
}

std::string JsonValue::stringOr(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->isNull()) return fallback;
  if (!v->isString()) throw JsonError("field \"" + key + "\" must be a string");
  return v->asString();
}

// -- Encoding ----------------------------------------------------------------

namespace {

void encodeString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out.push_back('"');
}

void encodeValue(const JsonValue& value, std::string& out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.asBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double v = value.asNumber();
      if (!std::isfinite(v)) throw JsonError("jsonEncode: non-finite number");
      // %.17g round-trips every double exactly — scores crossing the
      // HTTP surface stay bit-identical to the in-process values.
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out += buf;
      return;
    }
    case JsonValue::Type::kString:
      encodeString(value.asString(), out);
      return;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out.push_back(',');
        first = false;
        encodeValue(item, out);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out.push_back(',');
        first = false;
        encodeString(key, out);
        out.push_back(':');
        encodeValue(member, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string jsonEncode(const JsonValue& value) {
  std::string out;
  encodeValue(value, out);
  return out;
}

// -- Parsing -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue value = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("jsonParse at offset " + std::to_string(pos_) + ": " + why);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parseValue(std::size_t depth) {
    if (depth >= kMaxJsonDepth) fail("nesting exceeds depth limit");
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return JsonValue::string(parseString());
      case 't':
        if (consumeLiteral("true")) return JsonValue::boolean(true);
        fail("bad literal");
      case 'f':
        if (consumeLiteral("false")) return JsonValue::boolean(false);
        fail("bad literal");
      case 'n':
        if (consumeLiteral("null")) return JsonValue::null();
        fail("bad literal");
      default: return parseNumber();
    }
  }

  JsonValue parseObject(std::size_t depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skipWhitespace();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      out.set(std::move(key), parseValue(depth + 1));  // duplicate keys: last wins
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return out;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray(std::size_t depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return out;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  void appendUtf8(unsigned code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parseHex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with \uDC00-\uDFFF.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned low = parseHex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          appendUtf8(code, out);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digitsStart = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == digitsStart) fail("bad number");
    // JSON forbids leading zeros ("042"); strtod would accept them.
    if (text_[digitsStart] == '0' && pos_ - digitsStart > 1) fail("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t fracStart = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == fracStart) fail("bad number (empty fraction)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t expStart = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == expStart) fail("bad number (empty exponent)");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue jsonParse(std::string_view text) { return Parser(text).parseDocument(); }

}  // namespace dqndock::gateway
