#include "src/gateway/gateway.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/logging.hpp"
#include "src/common/stopwatch.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::gateway {

namespace {

serve::JobPriority priorityFromName(const std::string& name) {
  if (name == "high") return serve::JobPriority::kHigh;
  if (name == "low") return serve::JobPriority::kLow;
  return serve::JobPriority::kNormal;
}

JsonValue errorBody(const std::string& message) {
  JsonValue body = JsonValue::object();
  body.set("error", message);
  return body;
}

/// Round-trip-checked integer extraction: "max_steps": 12.5 is a client
/// bug that must 400, not truncate to 12.
long intField(const JsonValue& body, const std::string& key, long fallback) {
  const double raw = body.numberOr(key, static_cast<double>(fallback));
  const long value = static_cast<long>(raw);
  if (static_cast<double>(value) != raw) {
    throw JsonError("field \"" + key + "\" must be an integer");
  }
  return value;
}

JsonValue latencyJson(const serve::RouteStats& route) {
  JsonValue out = JsonValue::object();
  out.set("requests", static_cast<double>(route.requests));
  out.set("errors", static_cast<double>(route.errors));
  out.set("latency_samples", static_cast<double>(route.latencySamples));
  JsonValue percentiles = JsonValue::object();
  percentiles.set("p50", route.p50Seconds * 1e3);
  percentiles.set("p90", route.p90Seconds * 1e3);
  percentiles.set("p99", route.p99Seconds * 1e3);
  out.set("latency_ms", std::move(percentiles));
  return out;
}

void fillDockJson(JsonValue& out, const serve::JobOutcome& outcome) {
  out.set("job_id", static_cast<double>(outcome.jobId));
  out.set("status", std::string(serve::jobStatusName(outcome.status)));
  out.set("initial_score", outcome.dock.initialScore);
  out.set("best_score", outcome.dock.bestScore);
  out.set("final_score", outcome.dock.finalScore);
  out.set("best_rmsd", outcome.dock.bestRmsd);
  out.set("steps", static_cast<double>(outcome.dock.steps));
  out.set("termination", outcome.dock.termination);
  out.set("model_version", static_cast<double>(outcome.dock.modelVersion));
  out.set("seconds", outcome.dock.seconds);
  if (!outcome.error.empty()) out.set("error", outcome.error);
}

void fillScreenJson(JsonValue& out, const serve::JobOutcome& outcome) {
  out.set("job_id", static_cast<double>(outcome.jobId));
  out.set("status", std::string(serve::jobStatusName(outcome.status)));
  out.set("ligands", static_cast<double>(outcome.screen.ligands));
  out.set("hit_count", static_cast<double>(outcome.screen.hitCount));
  out.set("best_score", outcome.screen.bestScore);
  out.set("best_ligand", outcome.screen.bestLigand);
  out.set("evaluations", static_cast<double>(outcome.screen.totalEvaluations));
  out.set("seconds", outcome.screen.seconds);
  if (!outcome.error.empty()) out.set("error", outcome.error);
}

}  // namespace

HttpGateway::HttpGateway(const serve::TenantDirectory& directory, std::uint16_t port)
    : directory_(directory) {
  serve::ignoreSigpipe();  // client hangup mid-reply must be EPIPE, not death
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw std::runtime_error("HttpGateway: socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listenFd_);
    throw std::runtime_error(std::string("HttpGateway: bind failed: ") + std::strerror(errno));
  }
  if (::listen(listenFd_, 32) != 0) {
    ::close(listenFd_);
    throw std::runtime_error("HttpGateway: listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptThread_ = std::thread([this] { acceptLoop(); });
  logInfo() << "HttpGateway: listening on 127.0.0.1:" << port_ << " with "
            << directory_.size() << " model(s)";
}

HttpGateway::~HttpGateway() { stop(); }

void HttpGateway::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard lock(mu_);
    if (stopRequested_) {
      ::close(fd);
      continue;
    }
    ++stats_.connections;
    connectionFds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

bool HttpGateway::sendAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t w = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
#endif
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        std::lock_guard lock(mu_);
        ++stats_.peerHangups;
      }
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void HttpGateway::handleConnection(int fd) {
  HttpParser parser;
  char buf[16384];
  bool close = false;
  while (!close) {
    while (parser.status() == HttpParser::Status::kNeedMore) {
      const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        close = true;  // transport fault (or stop() shutdown)
        break;
      }
      if (r == 0) {
        // EOF. Between requests this is the normal end of a keep-alive
        // connection; mid-request it is a truncated request (including
        // mid-body hangup) — either way: clean close, nothing to answer.
        close = true;
        break;
      }
      parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
    }
    if (close) break;

    if (parser.status() == HttpParser::Status::kError) {
      {
        std::lock_guard lock(mu_);
        ++stats_.parseErrors;
        ++stats_.requests;
      }
      // Framing is unrecoverable after a parse error; answer and close.
      sendAll(fd, buildHttpResponse(parser.errorStatus(), "application/json",
                                    jsonEncode(errorBody(parser.errorReason())),
                                    /*close=*/true));
      break;
    }

    const HttpRequest& request = parser.request();
    close = request.wantsClose();
    const Reply reply = dispatch(request);
    {
      std::lock_guard lock(mu_);
      ++stats_.requests;
    }
    if (!sendAll(fd, buildHttpResponse(reply.status, "application/json",
                                       jsonEncode(reply.body), close))) {
      break;
    }
    if (!close) parser.reset();  // may complete instantly on pipelined surplus
  }
  {
    std::lock_guard lock(mu_);
    std::erase(connectionFds_, fd);
  }
  ::close(fd);
}

HttpGateway::Reply HttpGateway::dispatch(const HttpRequest& request) {
  try {
    const std::string path = request.path();
    if (path == "/v1/healthz" || path == "/v1/models" || path == "/v1/stats") {
      if (request.method != "GET") {
        return Reply(405, errorBody("use GET for " + path));
      }
      if (path == "/v1/healthz") return handleHealthz();
      if (path == "/v1/models") return handleModels();
      return handleStats();
    }

    // /v1/models/<name>/dock|screen
    const std::string prefix = "/v1/models/";
    if (path.rfind(prefix, 0) == 0) {
      const std::string rest = path.substr(prefix.size());
      const std::size_t slash = rest.find('/');
      if (slash == std::string::npos || slash == 0 || slash + 1 >= rest.size()) {
        return Reply(404, errorBody("expected /v1/models/<name>/dock or .../screen"));
      }
      const std::string name = rest.substr(0, slash);
      const std::string verb = rest.substr(slash + 1);
      if (verb != "dock" && verb != "screen") {
        return Reply(404, errorBody("unknown action \"" + verb + "\""));
      }
      serve::TenantDirectory::Tenant* tenant = directory_.find(name);
      if (tenant == nullptr) {
        return Reply(404, errorBody("unknown model \"" + name + "\""));
      }
      if (request.method != "POST") {
        return Reply(405, errorBody("use POST for " + path));
      }
      JsonValue body;
      try {
        body = jsonParse(request.body);
      } catch (const JsonError& e) {
        return Reply(400, errorBody(std::string("bad JSON body: ") + e.what()));
      }
      if (!body.isObject()) {
        return Reply(400, errorBody("request body must be a JSON object"));
      }
      return verb == "dock" ? handleDock(*tenant, body) : handleScreen(*tenant, body);
    }

    return Reply(404, errorBody("no route for " + path));
  } catch (const JsonError& e) {
    return Reply(400, errorBody(e.what()));
  } catch (const std::exception& e) {
    return Reply(500, errorBody(e.what()));
  }
}

HttpGateway::Reply HttpGateway::handleHealthz() const {
  JsonValue body = JsonValue::object();
  body.set("status", "ok");
  body.set("models", static_cast<double>(directory_.size()));
  return Reply(200, std::move(body));
}

HttpGateway::Reply HttpGateway::handleModels() const {
  JsonValue models = JsonValue::array();
  for (const std::string& name : directory_.names()) {
    const serve::TenantDirectory::Tenant* tenant = directory_.find(name);
    JsonValue entry = JsonValue::object();
    entry.set("name", name);
    entry.set("model_version", static_cast<double>(tenant->registry->currentVersion()));
    entry.set("state_dim", static_cast<double>(tenant->registry->inputDim()));
    entry.set("actions", static_cast<double>(tenant->registry->actionCount()));
    entry.set("workers", static_cast<double>(tenant->service->options().workers));
    entry.set("queue_capacity",
              static_cast<double>(tenant->service->options().queueCapacity));
    entry.set("fold_active", tenant->service->foldActive());
    models.push(std::move(entry));
  }
  JsonValue body = JsonValue::object();
  body.set("models", std::move(models));
  return Reply(200, std::move(body));
}

HttpGateway::Reply HttpGateway::handleStats() const {
  JsonValue body = JsonValue::object();
  {
    const GatewayStats snapshot = stats();
    JsonValue gw = JsonValue::object();
    gw.set("connections", static_cast<double>(snapshot.connections));
    gw.set("requests", static_cast<double>(snapshot.requests));
    gw.set("parse_errors", static_cast<double>(snapshot.parseErrors));
    gw.set("peer_hangups", static_cast<double>(snapshot.peerHangups));
    body.set("gateway", std::move(gw));
  }
  JsonValue models = JsonValue::array();
  for (const serve::TenantStats& tenant : directory_.stats()) {
    JsonValue entry = JsonValue::object();
    entry.set("name", tenant.name);
    entry.set("queue_depth", static_cast<double>(tenant.queueDepth));
    entry.set("queue_capacity", static_cast<double>(tenant.queueCapacity));
    entry.set("workers", static_cast<double>(tenant.workers));
    entry.set("dock", latencyJson(tenant.dock));
    entry.set("screen", latencyJson(tenant.screen));
    JsonValue jobs = JsonValue::object();
    jobs.set("done", static_cast<double>(tenant.service.done));
    jobs.set("failed", static_cast<double>(tenant.service.failed));
    jobs.set("cancelled", static_cast<double>(tenant.service.cancelled));
    jobs.set("timed_out", static_cast<double>(tenant.service.timedOut));
    entry.set("jobs", std::move(jobs));
    entry.set("batches", static_cast<double>(tenant.service.batcher.batches));
    entry.set("mean_batch_rows", tenant.service.batcher.meanBatchRows());
    models.push(std::move(entry));
  }
  body.set("models", std::move(models));
  return Reply(200, std::move(body));
}

HttpGateway::Reply HttpGateway::handleDock(serve::TenantDirectory::Tenant& tenant,
                                           const JsonValue& body) {
  serve::DockRequest dock;
  dock.maxSteps = static_cast<int>(intField(body, "max_steps", dock.maxSteps));
  dock.epsilon = body.numberOr("epsilon", dock.epsilon);
  dock.seed = static_cast<std::uint64_t>(intField(body, "seed", 1));
  dock.priority = priorityFromName(body.stringOr("priority", "normal"));
  dock.timeoutSeconds = body.numberOr("timeout_s", 0.0);

  Stopwatch clock;
  const serve::SubmitResult submitted = tenant.service->submitDock(dock);
  if (!submitted.accepted()) {
    tenant.recordDock(clock.seconds(), /*ok=*/false);
    JsonValue out = errorBody(submitted.reason());
    out.set("code", std::string(serve::submitStatusName(submitted.status)));
    return Reply(503, std::move(out));
  }
  const serve::JobOutcome outcome = tenant.service->wait(submitted.jobId);
  tenant.recordDock(clock.seconds(), outcome.status == serve::JobStatus::kDone);

  JsonValue out = JsonValue::object();
  out.set("model", tenant.name);
  fillDockJson(out, outcome);
  return Reply(200, std::move(out));
}

HttpGateway::Reply HttpGateway::handleScreen(serve::TenantDirectory::Tenant& tenant,
                                             const JsonValue& body) {
  serve::ScreenRequest screen;
  screen.librarySize = static_cast<std::size_t>(
      intField(body, "library_size", static_cast<long>(screen.librarySize)));
  screen.minAtoms = static_cast<std::size_t>(intField(body, "min_atoms", 8));
  screen.maxAtoms = static_cast<std::size_t>(intField(body, "max_atoms", 14));
  screen.evaluationsPerLigand = static_cast<std::size_t>(intField(body, "evals", 400));
  screen.seed = static_cast<std::uint64_t>(intField(body, "seed", 2020));
  screen.priority = priorityFromName(body.stringOr("priority", "normal"));
  screen.timeoutSeconds = body.numberOr("timeout_s", 0.0);

  Stopwatch clock;
  const serve::SubmitResult submitted = tenant.service->submitScreen(screen);
  if (!submitted.accepted()) {
    tenant.recordScreen(clock.seconds(), /*ok=*/false);
    JsonValue out = errorBody(submitted.reason());
    out.set("code", std::string(serve::submitStatusName(submitted.status)));
    return Reply(503, std::move(out));
  }
  const serve::JobOutcome outcome = tenant.service->wait(submitted.jobId);
  tenant.recordScreen(clock.seconds(), outcome.status == serve::JobStatus::kDone);

  JsonValue out = JsonValue::object();
  out.set("model", tenant.name);
  fillScreenJson(out, outcome);
  return Reply(200, std::move(out));
}

void HttpGateway::requestStop() {
  std::lock_guard lock(mu_);
  if (stopRequested_) return;
  stopRequested_ = true;
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  stopCv_.notify_all();
}

void HttpGateway::waitUntilStopped() {
  std::unique_lock lock(mu_);
  stopCv_.wait(lock, [&] { return stopRequested_; });
}

bool HttpGateway::stopRequested() const {
  std::lock_guard lock(mu_);
  return stopRequested_;
}

void HttpGateway::stop() {
  requestStop();
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    for (int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  logInfo() << "HttpGateway: stopped after " << stats_.requests << " requests on "
            << stats_.connections << " connections";
}

GatewayStats HttpGateway::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace dqndock::gateway
