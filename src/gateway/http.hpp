#pragma once

/// \file http.hpp
/// Hand-rolled incremental HTTP/1.1 request parser and response writer
/// for the gateway — no third-party dependency, byte-at-a-time safe.
///
/// The parser is a push-style state machine: feed() whatever arrived on
/// the socket; it answers kNeedMore until a full request (line + headers
/// + Content-Length body) is buffered, kComplete when request() is
/// ready, or kError with an HTTP status — malformed input from the
/// network maps to a 4xx/5xx response, NEVER a throw, crash, or hang.
/// Pipelined requests are supported: bytes past the first complete
/// request stay buffered, and reset() re-arms the machine on the
/// residue.
///
/// Deliberate scope cuts, each answered with a clean status code:
///   - Transfer-Encoding (chunked uploads) -> 501 Not Implemented;
///   - request bodies above kMaxBodyBytes  -> 413 Content Too Large;
///   - request line / header section above the caps -> 431;
///   - anything else malformed             -> 400 Bad Request.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dqndock::gateway {

/// Request-line length cap (method + target + version).
inline constexpr std::size_t kMaxRequestLineBytes = 8192;
/// Total header-section cap and per-request header-count cap.
inline constexpr std::size_t kMaxHeaderBytes = 32768;
inline constexpr std::size_t kMaxHeaderCount = 100;
/// Body cap — dock/screen request JSON is tiny; anything approaching a
/// megabyte is hostile or misrouted.
inline constexpr std::size_t kMaxBodyBytes = 1 << 20;

struct HttpRequest {
  std::string method;   ///< verbatim token ("GET", "POST", ...)
  std::string target;   ///< origin-form target, query string included
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  /// Header names lowercased (field names are case-insensitive);
  /// values trimmed of optional whitespace.
  std::map<std::string, std::string> headers;
  std::string body;

  std::string header(const std::string& lowercaseName, const std::string& fallback = "") const {
    const auto it = headers.find(lowercaseName);
    return it == headers.end() ? fallback : it->second;
  }

  /// Path without the query string ("/v1/models?x=1" -> "/v1/models").
  std::string path() const;

  /// True when the client asked to drop the connection after this
  /// exchange (Connection: close, or HTTP/1.0 without keep-alive).
  bool wantsClose() const;
};

class HttpParser {
 public:
  enum class Status : unsigned char { kNeedMore, kComplete, kError };

  /// Append newly-received bytes and advance the state machine. After
  /// kComplete, request() holds the parsed request and any surplus bytes
  /// (pipelining) remain buffered for the next reset()+feed() cycle.
  /// After kError, errorStatus()/errorReason() describe the 4xx/5xx to
  /// send; the connection must then close (framing is unrecoverable).
  Status feed(std::string_view data);

  /// Re-arm for the next pipelined request, retaining buffered surplus.
  /// Surplus alone can complete a request: reset() reparses it, so
  /// status() may be kComplete immediately, without another feed().
  void reset();

  Status status() const { return status_; }
  const HttpRequest& request() const { return request_; }
  int errorStatus() const { return errorStatus_; }
  const std::string& errorReason() const { return errorReason_; }

  /// True when a request is partially buffered (a mid-request hangup is
  /// a truncated request, not a clean close-between-requests).
  bool midRequest() const { return phase_ != Phase::kRequestLine || !buffer_.empty(); }

 private:
  enum class Phase : unsigned char { kRequestLine, kHeaders, kBody, kDone, kFailed };

  Status advance();
  Status failWith(int status, std::string reason);
  bool takeLine(std::string& line, std::size_t cap, int overflowStatus, const char* what);

  Phase phase_ = Phase::kRequestLine;
  Status status_ = Status::kNeedMore;
  HttpRequest request_;
  std::string buffer_;       ///< unconsumed bytes
  std::size_t headerBytes_ = 0;
  std::size_t contentLength_ = 0;
  int errorStatus_ = 0;
  std::string errorReason_;
};

/// Reason phrase for the status codes the gateway emits.
std::string_view httpStatusText(int status);

/// Serialize a response head + body. `close` adds "Connection: close".
std::string buildHttpResponse(int status, std::string_view contentType, std::string_view body,
                              bool close);

}  // namespace dqndock::gateway
